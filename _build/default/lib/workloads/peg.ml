(* Peg (Table 1): peg solitaire on the 15-hole triangular board.  The
   board is a pointer array whose cells are swapped between two shared
   PEG / EMPTY marker records; every applied or undone move performs
   three pointer stores through the write barrier, making this by far
   the most mutation-heavy benchmark — the paper's Peg logs four orders
   of magnitude more pointer updates than anything else and suffers
   accordingly under the sequential store buffer.

   The search counts complete solutions (one peg left) within a node
   budget and escapes through a simulated exception. *)

module R = Gsc.Runtime

let size = 15

(* (from, over, to) jumps of the 5-row triangle *)
let moves =
  let index r c = (r * (r + 1) / 2) + c in
  let inside r c = r >= 0 && r <= 4 && c >= 0 && c <= r in
  let dirs = [ (0, 1); (1, 0); (1, 1); (0, -1); (-1, 0); (-1, -1) ] in
  let acc = ref [] in
  for r = 0 to 4 do
    for c = 0 to r do
      List.iter
        (fun (dr, dc) ->
          let r1 = r + dr and c1 = c + dc in
          let r2 = r + (2 * dr) and c2 = c + (2 * dc) in
          if inside r1 c1 && inside r2 c2 then
            acc := (index r c, index r1 c1, index r2 c2) :: !acc)
        dirs
    done
  done;
  Array.of_list (List.rev !acc)

let initial_hole = 4

(* Native mirror with identical move order and node budget, used to
   compute the expected solution count. *)
let expected_solutions ~node_budget =
  let board = Array.make size true in
  board.(initial_hole) <- false;
  let nodes = ref 0 and sols = ref 0 in
  let exception Done in
  let rec dfs pegs =
    incr nodes;
    if !nodes > node_budget then raise Done;
    if pegs = 1 then incr sols
    else
      Array.iter
        (fun (f, o, t) ->
          if board.(f) && board.(o) && not board.(t) then begin
            board.(f) <- false;
            board.(o) <- false;
            board.(t) <- true;
            dfs (pegs - 1);
            board.(f) <- true;
            board.(o) <- true;
            board.(t) <- false
          end)
        moves
  in
  (try dfs (size - 1) with Done -> ());
  !sols

let run rt ~scale =
  let node_budget = scale in
  let s_marker = R.register_site rt ~name:"peg.marker" in
  let s_board = R.register_site rt ~name:"peg.board" in
  let s_try = R.register_site rt ~name:"peg.try_box" in
  (* main: 0 = board, 1 = peg marker, 2 = empty marker, 3 = counter box *)
  let k_main = R.register_frame rt ~name:"peg.main" ~slots:(Dsl.slots "pppp") in
  (* dfs: 0 = board (arg), 1 = counters (arg), 2 = try box *)
  let k_dfs = R.register_frame rt ~name:"peg.dfs" ~slots:(Dsl.slots "ppp") in
  R.call rt ~key:k_main ~args:[] (fun () ->
    R.alloc_record rt ~site:s_marker ~dst:(R.To_slot 1) [ R.I (R.Imm 1) ];
    R.alloc_record rt ~site:s_marker ~dst:(R.To_slot 2) [ R.I (R.Imm 0) ];
    R.alloc_ptr_array rt ~site:s_board ~dst:(R.To_slot 0) ~len:size;
    for i = 0 to size - 1 do
      let marker = if i = initial_hole then 2 else 1 in
      R.store_field rt ~obj:(R.Slot 0) ~idx:i (R.P (R.Slot marker))
    done;
    (* counters record: field 0 = nodes, field 1 = solutions,
       fields 2/3 = the two markers so the dfs frame can reach them *)
    R.alloc_record rt ~site:s_board ~dst:(R.To_slot 3)
      [ R.I (R.Imm 0); R.I (R.Imm 0); R.P (R.Slot 1); R.P (R.Slot 2) ];
    let occupied board_src i =
      R.load_field rt ~obj:board_src ~idx:i ~dst:(R.To_slot 2);
      R.field_int rt ~obj:(R.Slot 2) ~idx:0 = 1
    in
    let set_cell i ~peg =
      (* board in slot 0, counters in slot 1 of the dfs frame *)
      R.load_field rt ~obj:(R.Slot 1) ~idx:(if peg then 2 else 3)
        ~dst:(R.To_slot 2);
      R.store_field rt ~obj:(R.Slot 0) ~idx:i (R.P (R.Slot 2))
    in
    let rec dfs pegs board_val counters_val =
      R.call rt ~key:k_dfs ~args:[ board_val; counters_val ] (fun () ->
        let nodes = R.field_int rt ~obj:(R.Slot 1) ~idx:0 in
        R.store_field rt ~obj:(R.Slot 1) ~idx:0 (R.I (R.Imm (nodes + 1)));
        if nodes + 1 > node_budget then R.raise_exn rt (R.Imm 0);
        if pegs = 1 then begin
          let sols = R.field_int rt ~obj:(R.Slot 1) ~idx:1 in
          R.store_field rt ~obj:(R.Slot 1) ~idx:1 (R.I (R.Imm (sols + 1)))
        end
        else
          Array.iter
            (fun (f, o, t) ->
              (* a short-lived box per attempted move *)
              R.alloc_record rt ~site:s_try ~dst:(R.To_slot 2)
                [ R.I (R.Imm f); R.I (R.Imm t) ];
              if
                occupied (R.Slot 0) f
                && occupied (R.Slot 0) o
                && not (occupied (R.Slot 0) t)
              then begin
                set_cell f ~peg:false;
                set_cell o ~peg:false;
                set_cell t ~peg:true;
                dfs (pegs - 1) (R.get_slot rt 0) (R.get_slot rt 1);
                set_cell f ~peg:true;
                set_cell o ~peg:true;
                set_cell t ~peg:false
              end)
            moves)
    in
    let sols =
      R.try_with rt
        (fun () ->
          dfs (size - 1) (R.get_slot rt 0) (R.get_slot rt 3);
          R.field_int rt ~obj:(R.Slot 3) ~idx:1)
        ~handler:(fun () -> R.field_int rt ~obj:(R.Slot 3) ~idx:1)
    in
    let want = expected_solutions ~node_budget in
    if sols <> want then
      failwith (Printf.sprintf "peg: %d solutions, want %d" sols want))

let workload =
  { Spec.name = "peg";
    description =
      "Peg solitaire on the triangular 15-hole board, mutating the board \
       in place (very high pointer-update rate)";
    paper_lines = 458;
    default_scale = 20000;
    run }
