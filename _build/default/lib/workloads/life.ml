(* Life (Table 1): Conway's game of Life implemented with lists, after
   Reade.  A generation is a list of live-cell coordinates; each step
   builds candidate lists and a fresh generation list, so almost every
   allocation dies within a step — the paper's shallow-stack, high-churn,
   tiny-live-set benchmark.

   Coordinates are packed as (x + 512) * 2048 + (y + 512). *)

module R = Gsc.Runtime

let pack x y = ((x + 512) * 2048) + (y + 512)
let unpack c = ((c / 2048) - 512, (c mod 2048) - 512)

let neighbours (x, y) =
  [ (x - 1, y - 1); (x - 1, y); (x - 1, y + 1);
    (x, y - 1); (x, y + 1);
    (x + 1, y - 1); (x + 1, y); (x + 1, y + 1) ]

(* native mirror used to compute the expected population *)
let native_step cells =
  let module S = Set.Make (struct
    type t = int * int
    let compare = compare
  end) in
  let live = S.of_list cells in
  let candidates =
    S.fold (fun c acc -> List.fold_left (fun a n -> S.add n a) (S.add c acc) (neighbours c))
      live S.empty
  in
  S.fold
    (fun c acc ->
      let n = List.length (List.filter (fun p -> S.mem p live) (neighbours c)) in
      if n = 3 || (n = 2 && S.mem c live) then c :: acc else acc)
    candidates []

let initial_cells =
  (* a glider, a blinker and a block, far apart *)
  [ (0, 0); (1, 1); (1, 2); (0, 2); (-1, 2);           (* glider *)
    (40, 40); (40, 41); (40, 42);                       (* blinker *)
    (-40, -40); (-40, -39); (-39, -40); (-39, -39) ]    (* block *)

let expected_population ~gens =
  let rec go cells n = if n = 0 then cells else go (native_step cells) (n - 1) in
  List.length (go initial_cells gens)

let run rt ~scale =
  let s_cell = R.register_site rt ~name:"life.cell" in
  let s_cand = R.register_site rt ~name:"life.cand" in
  (* main: 0 = generation list, 1 = scratch *)
  let k_main = R.register_frame rt ~name:"life.main" ~slots:(Dsl.slots "pp") in
  (* step: 0 = gen(arg), 1 = candidates, 2 = next gen, 3/4 = cursors *)
  let k_step = R.register_frame rt ~name:"life.step" ~slots:(Dsl.slots "ppppp") in
  (* mem: 0 = list(arg), 1 = cursor *)
  let k_mem = R.register_frame rt ~name:"life.mem" ~slots:(Dsl.slots "pp") in
  (* count: 0 = live list (arg), 1 = cursor *)
  let k_count = R.register_frame rt ~name:"life.count" ~slots:(Dsl.slots "pp") in
  let member ~list_val v =
    R.call rt ~key:k_mem ~args:[ list_val ] (fun () ->
      R.set_slot rt 1 (R.get_slot rt 0);
      let found = ref false in
      while (not !found) && not (R.is_nil rt (R.Slot 1)) do
        if Dsl.list_head_int rt ~list:1 = v then found := true
        else Dsl.list_advance rt ~list:1
      done;
      !found)
  in
  let live_neighbours ~live_val c =
    R.call rt ~key:k_count ~args:[ live_val ] (fun () ->
      let x, y = unpack c in
      List.fold_left
        (fun acc (nx, ny) ->
          if member ~list_val:(R.get_slot rt 0) (pack nx ny) then acc + 1
          else acc)
        0 (neighbours (x, y)))
  in
  let step gen_val =
    R.call rt ~key:k_step ~args:[ gen_val ] (fun () ->
      (* candidates: all live cells plus their neighbours, deduplicated *)
      R.set_slot rt 1 Mem.Value.null;
      R.set_slot rt 3 (R.get_slot rt 0);
      while not (R.is_nil rt (R.Slot 3)) do
        let c = Dsl.list_head_int rt ~list:3 in
        let x, y = unpack c in
        let consider v =
          if not (member ~list_val:(R.get_slot rt 1) v) then
            Dsl.cons_int rt ~site:s_cand ~list:1 v
        in
        consider c;
        List.iter (fun (nx, ny) -> consider (pack nx ny)) (neighbours (x, y));
        Dsl.list_advance rt ~list:3
      done;
      (* apply the rules *)
      R.set_slot rt 2 Mem.Value.null;
      R.set_slot rt 4 (R.get_slot rt 1);
      while not (R.is_nil rt (R.Slot 4)) do
        let c = Dsl.list_head_int rt ~list:4 in
        let n = live_neighbours ~live_val:(R.get_slot rt 0) c in
        let alive = member ~list_val:(R.get_slot rt 0) c in
        if n = 3 || (n = 2 && alive) then
          Dsl.cons_int rt ~site:s_cell ~list:2 c;
        Dsl.list_advance rt ~list:4
      done;
      R.get_slot rt 2)
  in
  R.call rt ~key:k_main ~args:[] (fun () ->
    R.set_slot rt 0 Mem.Value.null;
    List.iter
      (fun (x, y) -> Dsl.cons_int rt ~site:s_cell ~list:0 (pack x y))
      initial_cells;
    for _ = 1 to scale do
      let next = step (R.get_slot rt 0) in
      R.set_slot rt 0 next
    done;
    let pop = Dsl.list_length rt ~list:0 ~cursor:1 in
    let want = expected_population ~gens:scale in
    if pop <> want then
      failwith (Printf.sprintf "life: population %d, want %d" pop want))

let workload =
  { Spec.name = "life";
    description = "The game of Life implemented using lists (Reade 1989)";
    paper_lines = 146;
    default_scale = 60;
    run }
