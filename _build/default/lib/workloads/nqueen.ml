(* Nqueen (Table 1): the N-queens problem.  Partial placements are
   persistent cons lists that mostly die on backtracking, while complete
   solutions are copied into an accumulating solution set — the handful
   of allocation sites behind the solution set are the paper's textbook
   pretenuring targets (old% = 99.88 in Figure 2).

   The safety check recurses down the placement list without a tail call,
   giving the paper's ~2n stack depth. *)

module R = Gsc.Runtime

let expected_solutions = [| 1; 1; 0; 0; 2; 10; 4; 40; 92; 352; 724 |]
(* indexed by n, for n <= 10 *)

let run rt ~scale =
  let n = scale in
  if n < 1 || n > 10 then invalid_arg "nqueen: scale must be in 1..10";
  let s_pos = R.register_site rt ~name:"nq.pos" in          (* dies young *)
  let s_try = R.register_site rt ~name:"nq.try_box" in      (* dies young *)
  let s_sol_cell = R.register_site rt ~name:"nq.sol_cell" in (* long-lived *)
  let s_sol_list = R.register_site rt ~name:"nq.sol_list" in (* long-lived *)
  (* main: 0 = solutions list, 1 = scratch *)
  let k_main = R.register_frame rt ~name:"nq.main" ~slots:(Dsl.slots "pp") in
  (* place: 0 = placed list (arg), 1 = solutions (arg), 2 = candidate box,
     3 = extended list *)
  let k_place = R.register_frame rt ~name:"nq.place" ~slots:(Dsl.slots "pppp") in
  (* safe: 0 = placed list (arg), 1 = cursor *)
  let k_safe = R.register_frame rt ~name:"nq.safe" ~slots:(Dsl.slots "pp") in
  (* copy: 0 = placed (arg), 1 = solutions (arg), 2 = copy being built *)
  let k_copy = R.register_frame rt ~name:"nq.copy" ~slots:(Dsl.slots "ppp") in
  (* Is placing a queen in column [col] at row [row] safe, given the list
     of already-placed columns (most recent row first)?  Recursive and
     non-tail, like the SML original. *)
  let rec safe_from placed_val col dist =
    R.call rt ~key:k_safe ~args:[ placed_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then true
      else begin
        let c = Dsl.list_head_int rt ~list:0 in
        if c = col || c = col + dist || c = col - dist then false
        else begin
          R.load_field rt ~obj:(R.Slot 0) ~idx:1 ~dst:(R.To_slot 1);
          let tail = R.get_slot rt 1 in
          (* non-tail: the && forces work after the recursive call *)
          let deeper = safe_from tail col (dist + 1) in
          deeper && c <> col
        end
      end)
  in
  (* copy a complete placement into long-lived solution cells and cons it
     onto the solution list; returns the new solutions list *)
  let record_solution placed_val sols_val =
    R.call rt ~key:k_copy ~args:[ placed_val; sols_val ] (fun () ->
      R.set_slot rt 2 Mem.Value.null;
      while not (R.is_nil rt (R.Slot 0)) do
        let c = Dsl.list_head_int rt ~list:0 in
        Dsl.cons_int rt ~site:s_sol_cell ~list:2 c;
        Dsl.list_advance rt ~list:0
      done;
      R.alloc_record rt ~site:s_sol_list ~dst:(R.To_slot 1)
        [ R.P (R.Slot 2); R.P (R.Slot 1) ];
      R.get_slot rt 1)
  in
  let rec place row placed_val sols_val =
    R.call rt ~key:k_place ~args:[ placed_val; sols_val ] (fun () ->
      if row = n then begin
        let sols = record_solution (R.get_slot rt 0) (R.get_slot rt 1) in
        R.set_slot rt 1 sols;
        R.get_slot rt 1
      end
      else begin
        for col = 0 to n - 1 do
          (* a short-lived box per attempt: the paper's nqueens allocates
             heavily per candidate; dead on arrival, so unrooted at once *)
          R.alloc_record rt ~site:s_try ~dst:(R.To_slot 2)
            [ R.I (R.Imm col); R.I (R.Imm row) ];
          R.set_slot rt 2 Mem.Value.null;
          if safe_from (R.get_slot rt 0) col 1 then begin
            R.alloc_record rt ~site:s_pos ~dst:(R.To_slot 3)
              [ R.I (R.Imm col); R.P (R.Slot 0) ];
            let sols = place (row + 1) (R.get_slot rt 3) (R.get_slot rt 1) in
            R.set_slot rt 1 sols
          end
        done;
        R.get_slot rt 1
      end)
  in
  R.call rt ~key:k_main ~args:[] (fun () ->
    R.set_slot rt 0 Mem.Value.null;
    let sols = place 0 Mem.Value.null (R.get_slot rt 0) in
    R.set_slot rt 0 sols;
    let count = Dsl.list_length rt ~list:0 ~cursor:1 in
    let want = expected_solutions.(n) in
    if count <> want then
      failwith (Printf.sprintf "nqueen: %d solutions, want %d" count want))

let workload =
  { Spec.name = "nqueen";
    description = "The N-queens problem for n = 10";
    paper_lines = 73;
    default_scale = 10;
    run }
