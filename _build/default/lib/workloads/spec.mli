(** Workload descriptors.

    Each of the paper's eleven benchmarks (Table 1) is re-implemented as a
    real computation against the simulated runtime.  A workload registers
    its own trace-table entries and allocation sites on the runtime it is
    given, runs, and verifies its own answer (raising on a wrong result,
    so every harness run doubles as a correctness check of the runtime). *)

type t = {
  name : string;
  description : string;         (** after the paper's Table 1 *)
  paper_lines : int;            (** source size reported in Table 1 *)
  default_scale : int;          (** problem-size knob; see DESIGN.md §7 *)
  run : Gsc.Runtime.t -> scale:int -> unit;
}

(** [run_default t rt] runs at the default scale. *)
val run_default : t -> Gsc.Runtime.t -> unit
