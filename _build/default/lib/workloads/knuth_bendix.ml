(* Knuth-Bendix (Table 1): completion, here for string rewriting over a
   four-letter alphabet with the shortlex order.  Equations are
   normalized against the rule set, oriented into rules, and critical
   pairs (overlaps and containments) are queued — no interreduction, an
   equation budget bounds the run, and critical pairs longer than
   [max_word_len] are discarded (same-length rules otherwise make pair
   lengths add without bound); all three pragmatics are noted in
   DESIGN.md.

   The memory shape matches the paper's: the rule database grows
   monotonically (rules and their words are long-lived, Figure 2 shows
   their sites at 99%+ old), rewriting scratch dies at once, and —
   crucially — every rewrite attempt recurses through the rule list with
   one simulated frame per rule, so the stack deepens with the database
   (the paper reports a 4234-frame peak and 76% of GC time spent
   scanning it).

   A native mirror runs the identical algorithm in the identical order;
   rule-set size and checksum must match exactly. *)

module R = Gsc.Runtime

let alphabet = 4

let word_hash w = List.fold_left (fun a s -> ((a * 5) + s + 1) land 0x3FFFFFFF) 0 w

let max_word_len = 12

(* shortlex: longer is greater; same length falls back to lex *)
let rec lex_gt a b =
  match a, b with
  | [], _ | _, [] -> false
  | x :: a', y :: b' -> x > y || (x = y && lex_gt a' b')

let shortlex_gt a b =
  let la = List.length a and lb = List.length b in
  la > lb || (la = lb && lex_gt a b)

(* After each rule installation the workload normalizes a batch of probe
   words against the database.  Completion implementations spend most of
   their time rewriting; the probes reproduce that cost profile.  The
   probe phase runs below a non-tail recursive walk over the whole rule
   list (the SML original's non-tail list traversals), so a stack one
   frame per database entry stays live across many collections — exactly
   the persistent deep stack of the paper's Table 2 (1336-frame average,
   116.9 new frames per collection). *)
let probes_per_rule = 2
let probe_word_len = 8

let relations ~count =
  let prng = Support.Prng.create ~seed:0x6B2 in
  let word () =
    let len = 2 + Support.Prng.int prng 4 in
    List.init len (fun _ -> Support.Prng.int prng alphabet)
  in
  List.init count (fun _ -> (word (), word ()))

(* --- the algorithm, natively (the mirror) --- *)

module Native = struct
  let rec match_prefix word lhs =
    match lhs, word with
    | [], rest -> Some rest
    | _, [] -> None
    | l :: lhs', w :: word' -> if l = w then match_prefix word' lhs' else None

  let rec try_rules_at word rules =
    match rules with
    | [] -> None
    | (lhs, rhs) :: rest ->
      (match match_prefix word lhs with
       | Some remainder -> Some (rhs @ remainder)
       | None -> try_rules_at word rest)

  let rec rewrite word rules =
    match word with
    | [] -> None
    | w :: tail ->
      (match try_rules_at word rules with
       | Some w' -> Some w'
       | None ->
         (match rewrite tail rules with
          | Some t' -> Some (w :: t')
          | None -> None))

  let rec normalize word rules =
    match rewrite word rules with
    | Some w' -> normalize w' rules
    | None -> word

  let rec take k l = if k = 0 then [] else
    match l with [] -> [] | x :: r -> x :: take (k - 1) r

  let rec drop k l = if k = 0 then l else
    match l with [] -> [] | _ :: r -> drop (k - 1) r

  (* critical pairs of (l1 -> r1) with (l2 -> r2), in generation order *)
  let critical_pairs (l1, r1) (l2, r2) =
    let n1 = List.length l1 and n2 = List.length l2 in
    let acc = ref [] in
    (* overlaps: a suffix of l1 equals a prefix of l2 *)
    for k = 1 to min n1 n2 do
      if drop (n1 - k) l1 = take k l2 then
        acc := (r1 @ drop k l2, take (n1 - k) l1 @ r2) :: !acc
    done;
    (* containment: l2 occurs strictly inside l1 *)
    if n2 < n1 then
      for i = 0 to n1 - n2 do
        if take n2 (drop i l1) = l2 then
          acc := (r1, take i l1 @ r2 @ drop (i + n2) l1) :: !acc
      done;
    List.filter
      (fun (u, v) ->
        List.length u <= max_word_len && List.length v <= max_word_len)
      (List.rev !acc)

  let complete ~relations ~max_eqs =
    let rules = ref [] in        (* newest first *)
    let queue = ref relations in (* LIFO *)
    let processed = ref 0 in
    while !queue <> [] && !processed < max_eqs do
      match !queue with
      | [] -> ()
      | (u, v) :: rest ->
        queue := rest;
        incr processed;
        let nu = normalize u !rules in
        let nv = normalize v !rules in
        if nu <> nv then begin
          let l, r = if shortlex_gt nu nv then (nu, nv) else (nv, nu) in
          let rule = (l, r) in
          (* overlaps with every existing rule (newest first), both
             orders, then the self-overlap *)
          let eqs =
            List.concat_map
              (fun old -> critical_pairs rule old @ critical_pairs old rule)
              !rules
            @ critical_pairs rule rule
          in
          queue := eqs @ !queue;
          rules := rule :: !rules
        end
    done;
    !rules

  let checksum rules =
    List.fold_left
      (fun acc (l, r) ->
        (acc + (word_hash l * 31) + word_hash r) land 0x3FFFFFFF)
      (List.length rules * 13) rules
end

(* --- simulated version --- *)

let run rt ~scale =
  let max_eqs = 40 * scale in
  let input = relations ~count:scale in
  let native_rules = Native.complete ~relations:input ~max_eqs in
  let expected_count = List.length native_rules in
  let expected_sum = Native.checksum native_rules in
  let s_scratch = R.register_site rt ~name:"kb.scratch_sym" in
  let s_try = R.register_site rt ~name:"kb.try_box" in
  let s_eq = R.register_site rt ~name:"kb.equation" in
  let s_eq_word = R.register_site rt ~name:"kb.eq_word" in
  let s_rule = R.register_site rt ~name:"kb.rule" in
  let s_rule_sym = R.register_site rt ~name:"kb.rule_sym" in
  let s_rule_cons = R.register_site rt ~name:"kb.rule_cons" in
  (* globals: 0 = equation queue, 1 = rules list *)
  let g_queue = 0 and g_rules = 1 in
  let k_main = R.register_frame rt ~name:"kb.main" ~slots:(Dsl.slots "pppppp") in
  let k_match = R.register_frame rt ~name:"kb.match_prefix" ~slots:(Dsl.slots "pppp") in
  let k_tryrules = R.register_frame rt ~name:"kb.try_rules" ~slots:(Dsl.slots "pppppp") in
  let k_rewrite = R.register_frame rt ~name:"kb.rewrite" ~slots:(Dsl.slots "ppppp") in
  let k_append = R.register_frame rt ~name:"kb.append" ~slots:(Dsl.slots "pppp") in
  let k_word = R.register_frame rt ~name:"kb.word_util" ~slots:(Dsl.slots "pppp") in
  let k_step = R.register_frame rt ~name:"kb.complete_step" ~slots:(Dsl.slots "pppppp") in
  let head l = R.field_int rt ~obj:l ~idx:0 in
  (* build a simulated word from a native one, in the given site *)
  let of_native ~site w =
    R.call rt ~key:k_word ~args:[] (fun () ->
      R.set_slot rt 0 Mem.Value.null;
      List.iter
        (fun s ->
          R.alloc_record rt ~site ~dst:(R.To_slot 0)
            [ R.I (R.Imm s); R.P (R.Slot 0) ])
        (List.rev w);
      R.get_slot rt 0)
  in
  (* read a simulated word back to a native list (verification only) *)
  let to_native w_val =
    R.call rt ~key:k_word ~args:[ w_val ] (fun () ->
      let acc = ref [] in
      while not (R.is_nil rt (R.Slot 0)) do
        acc := head (R.Slot 0) :: !acc;
        Dsl.list_advance rt ~list:0
      done;
      List.rev !acc)
  in
  (* append two words into scratch cells *)
  let rec append a_val b_val =
    R.call rt ~key:k_append ~args:[ a_val; b_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then R.get_slot rt 1
      else begin
        let h = head (R.Slot 0) in
        R.load_field rt ~obj:(R.Slot 0) ~idx:1 ~dst:(R.To_slot 2);
        R.set_slot rt 2 (append (R.get_slot rt 2) (R.get_slot rt 1));
        R.alloc_record rt ~site:s_scratch ~dst:(R.To_slot 3)
          [ R.I (R.Imm h); R.P (R.Slot 2) ];
        R.get_slot rt 3
      end)
  in
  (* match_prefix: does lhs prefix word?  Returns the remainder. *)
  let rec match_prefix word_val lhs_val =
    R.call rt ~key:k_match ~args:[ word_val; lhs_val ] (fun () ->
      if R.is_nil rt (R.Slot 1) then Some (R.get_slot rt 0)
      else if R.is_nil rt (R.Slot 0) then None
      else if head (R.Slot 0) <> head (R.Slot 1) then None
      else begin
        R.load_field rt ~obj:(R.Slot 0) ~idx:1 ~dst:(R.To_slot 2);
        R.load_field rt ~obj:(R.Slot 1) ~idx:1 ~dst:(R.To_slot 3);
        match_prefix (R.get_slot rt 2) (R.get_slot rt 3)
      end)
  in
  (* first rule (in database order) rewriting at the head position;
     one simulated frame per database entry — the deep-stack driver *)
  let rec try_rules_at word_val rules_val =
    R.call rt ~key:k_tryrules ~args:[ word_val; rules_val ] (fun () ->
      if R.is_nil rt (R.Slot 1) then None
      else begin
        (* a short-lived box per attempted rule (the comparison closure);
           this is where the benchmark's allocation happens while the
           stack is deepest.  It is dead on arrival: unroot it at once so
           the collector never copies it. *)
        R.alloc_record rt ~site:s_try ~dst:(R.To_slot 4) [ R.I (R.Imm 0) ];
        R.set_slot rt 4 Mem.Value.null;
        R.load_field rt ~obj:(R.Slot 1) ~idx:0 ~dst:(R.To_slot 2);
        R.load_field rt ~obj:(R.Slot 2) ~idx:0 ~dst:(R.To_slot 3);
        (* slot 3 = lhs *)
        match match_prefix (R.get_slot rt 0) (R.get_slot rt 3) with
        | Some remainder ->
          R.set_slot rt 4 remainder;
          R.load_field rt ~obj:(R.Slot 2) ~idx:1 ~dst:(R.To_slot 5);
          Some (append (R.get_slot rt 5) (R.get_slot rt 4))
        | None ->
          R.load_field rt ~obj:(R.Slot 1) ~idx:1 ~dst:(R.To_slot 5);
          try_rules_at (R.get_slot rt 0) (R.get_slot rt 5)
      end)
  in
  let rec rewrite word_val rules_val =
    R.call rt ~key:k_rewrite ~args:[ word_val; rules_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then None
      else
        match try_rules_at (R.get_slot rt 0) (R.get_slot rt 1) with
        | Some w' -> Some w'
        | None -> begin
            let h = head (R.Slot 0) in
            R.load_field rt ~obj:(R.Slot 0) ~idx:1 ~dst:(R.To_slot 2);
            match rewrite (R.get_slot rt 2) (R.get_slot rt 1) with
            | None -> None
            | Some t' ->
              R.set_slot rt 3 t';
              R.alloc_record rt ~site:s_scratch ~dst:(R.To_slot 4)
                [ R.I (R.Imm h); R.P (R.Slot 3) ];
              Some (R.get_slot rt 4)
          end)
  in
  let normalize word_val =
    R.call rt ~key:k_word ~args:[ word_val ] (fun () ->
      let continue_ = ref true in
      while !continue_ do
        match rewrite (R.get_slot rt 0) (R.get_global rt g_rules) with
        | Some w' -> R.set_slot rt 0 w'
        | None -> continue_ := false
      done;
      R.get_slot rt 0)
  in
  R.call rt ~key:k_main ~args:[] (fun () ->
    R.set_global rt g_queue Mem.Value.null;
    R.set_global rt g_rules Mem.Value.null;
    (* push an equation (u in slot a, v in slot b of main) onto the queue *)
    let push_eq_from_slots a b =
      assert (a <> 5 && b <> 5);
      R.set_slot rt 5 (R.get_global rt g_queue);
      R.alloc_record rt ~site:s_eq ~dst:(R.To_slot 5)
        [ R.P (R.Slot a); R.P (R.Slot b); R.P (R.Slot 5) ];
      R.set_global rt g_queue (R.get_slot rt 5)
    in
    (* seed the queue: LIFO, so push in reverse to process in order *)
    List.iter
      (fun (u, v) ->
        R.set_slot rt 0 (of_native ~site:s_eq_word u);
        R.set_slot rt 1 (of_native ~site:s_eq_word v);
        push_eq_from_slots 0 1)
      (List.rev input);
    let processed = ref 0 in
    let rule_count = ref 0 in
    (* Each equation is processed one stack level deeper than the last,
       without a tail call, so the chain of activation records persists
       until the completion finishes — the paper's Knuth-Bendix stack
       shape (deep, rarely unwound, few new frames per collection). *)
    let rec complete_rec () =
      if (not (R.is_nil rt (R.Global g_queue))) && !processed < max_eqs then
        ignore (1 + R.call rt ~key:k_step ~args:[] process_one : int)
    and process_one () =
      incr processed;
      (* pop: u -> slot 0, v -> slot 1 *)
      R.load_field rt ~obj:(R.Global g_queue) ~idx:0 ~dst:(R.To_slot 0);
      R.load_field rt ~obj:(R.Global g_queue) ~idx:1 ~dst:(R.To_slot 1);
      R.load_field rt ~obj:(R.Global g_queue) ~idx:2 ~dst:(R.To_slot 2);
      R.set_global rt g_queue (R.get_slot rt 2);
      R.set_slot rt 0 (normalize (R.get_slot rt 0));
      R.set_slot rt 1 (normalize (R.get_slot rt 1));
      let nu = to_native (R.get_slot rt 0) in
      let nv = to_native (R.get_slot rt 1) in
      if nu <> nv then begin
        let l, r = if shortlex_gt nu nv then (nu, nv) else (nv, nu) in
        (* the new rule's words are copied into long-lived cells *)
        R.set_slot rt 0 (of_native ~site:s_rule_sym l);
        R.set_slot rt 1 (of_native ~site:s_rule_sym r);
        R.alloc_record rt ~site:s_rule ~dst:(R.To_slot 2)
          [ R.P (R.Slot 0); R.P (R.Slot 1) ];
        (* critical pairs against the database (native word math over
           the native copies, simulated allocation for the equations) *)
        let eqs = ref [] in
        R.set_slot rt 3 (R.get_global rt g_rules);
        while not (R.is_nil rt (R.Slot 3)) do
          R.load_field rt ~obj:(R.Slot 3) ~idx:0 ~dst:(R.To_slot 4);
          R.load_field rt ~obj:(R.Slot 4) ~idx:0 ~dst:(R.To_slot 5);
          let old_l = to_native (R.get_slot rt 5) in
          R.load_field rt ~obj:(R.Slot 4) ~idx:1 ~dst:(R.To_slot 5);
          let old_r = to_native (R.get_slot rt 5) in
          eqs :=
            !eqs
            @ Native.critical_pairs (l, r) (old_l, old_r)
            @ Native.critical_pairs (old_l, old_r) (l, r);
          Dsl.list_advance rt ~list:3
        done;
        let eqs = !eqs @ Native.critical_pairs (l, r) (l, r) in
        (* LIFO push in reverse so that the queue head order matches the
           mirror's [eqs @ queue] *)
        List.iter
          (fun (u, v) ->
            R.set_slot rt 3 (of_native ~site:s_eq_word u);
            R.set_slot rt 4 (of_native ~site:s_eq_word v);
            push_eq_from_slots 3 4)
          (List.rev eqs);
        (* install the rule *)
        R.set_slot rt 3 (R.get_global rt g_rules);
        R.alloc_record rt ~site:s_rule_cons ~dst:(R.To_slot 3)
          [ R.P (R.Slot 2); R.P (R.Slot 3) ];
        R.set_global rt g_rules (R.get_slot rt 3);
        incr rule_count;
        (* rewriting probes: the completion's dominant cost *)
        let prng = Support.Prng.create ~seed:(0x9B0 + !rule_count) in
        for _ = 1 to probes_per_rule do
          let w =
            List.init probe_word_len (fun _ -> Support.Prng.int prng alphabet)
          in
          R.set_slot rt 0 (of_native ~site:s_scratch w);
          R.set_slot rt 0 (normalize (R.get_slot rt 0))
        done
      end;
      (* recurse for the remaining equations; this frame stays live
         underneath all of them (non-tail) *)
      complete_rec ();
      0
    in
    complete_rec ();
    (* verify against the mirror *)
    if !rule_count <> expected_count then
      failwith
        (Printf.sprintf "kb: %d rules, want %d" !rule_count expected_count);
    let sum = ref (!rule_count * 13) in
    let sums = ref [] in
    R.set_slot rt 3 (R.get_global rt g_rules);
    while not (R.is_nil rt (R.Slot 3)) do
      R.load_field rt ~obj:(R.Slot 3) ~idx:0 ~dst:(R.To_slot 4);
      R.load_field rt ~obj:(R.Slot 4) ~idx:0 ~dst:(R.To_slot 5);
      let l = to_native (R.get_slot rt 5) in
      R.load_field rt ~obj:(R.Slot 4) ~idx:1 ~dst:(R.To_slot 5);
      let r = to_native (R.get_slot rt 5) in
      sums := ((word_hash l * 31) + word_hash r) :: !sums;
      Dsl.list_advance rt ~list:3
    done;
    (* the mirror folds newest-first over its rules list; our sims list
       is also newest-first, but we collected into [sums] reversed *)
    List.iter (fun s -> sum := (!sum + s) land 0x3FFFFFFF) (List.rev !sums);
    if !sum <> expected_sum then
      failwith (Printf.sprintf "kb: checksum %d, want %d" !sum expected_sum))

let workload =
  { Spec.name = "knuth-bendix";
    description =
      "Knuth-Bendix completion for string rewriting (shortlex order, \
       critical pairs, no interreduction; equation budget bounded)";
    paper_lines = 618;
    default_scale = 10;
    run }
