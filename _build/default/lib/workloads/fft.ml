(* FFT (Table 1): fast Fourier transform multiplying polynomials.  All
   data lives in large non-pointer arrays that bypass the nursery into
   the large-object space under the generational collector (and are
   copied wholesale under semispace collection — which is exactly why the
   paper's FFT is cheap generationally and expensive under semispace).

   Arithmetic is 16.16 fixed-point so that the simulated heap only holds
   integers; the expected output is produced by a native mirror running
   the identical integer algorithm, so verification is exact. *)

module R = Gsc.Runtime

let fraction_bits = 16
let fix_one = 1 lsl fraction_bits

let fix_of_float x = int_of_float (Float.round (x *. float_of_int fix_one))
let fix_mul a b = (a * b) asr fraction_bits

(* twiddle factors: native tables shared by the simulated run and the
   mirror (the table is compiler-constant data, not simulated heap) *)
let twiddles n ~inverse =
  let sign = if inverse then 1.0 else -1.0 in
  Array.init (n / 2) (fun k ->
    let angle = sign *. 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    (fix_of_float (cos angle), fix_of_float (sin angle)))

let bit_reverse ~bits i =
  let r = ref 0 in
  for b = 0 to bits - 1 do
    if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
  done;
  !r

(* --- native mirror --- *)

let native_fft ~inverse re im =
  let n = Array.length re in
  let bits = int_of_float (Float.round (Float.log2 (float_of_int n))) in
  let tw = twiddles n ~inverse in
  let cur_re = Array.init n (fun i -> re.(bit_reverse ~bits i)) in
  let cur_im = Array.init n (fun i -> im.(bit_reverse ~bits i)) in
  let cur_re = ref cur_re and cur_im = ref cur_im in
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let step = n / !len in
    let next_re = Array.make n 0 and next_im = Array.make n 0 in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let wr, wi = tw.(j * step) in
        let a = !i + j and b = !i + j + half in
        let br = !cur_re.(b) and bi = !cur_im.(b) in
        let tr = fix_mul wr br - fix_mul wi bi in
        let ti = fix_mul wr bi + fix_mul wi br in
        next_re.(a) <- !cur_re.(a) + tr;
        next_im.(a) <- !cur_im.(a) + ti;
        next_re.(b) <- !cur_re.(a) - tr;
        next_im.(b) <- !cur_im.(a) - ti
      done;
      i := !i + !len
    done;
    cur_re := next_re;
    cur_im := next_im;
    len := !len * 2
  done;
  (!cur_re, !cur_im)

let native_multiply p q n =
  let re = Array.make n 0 and im = Array.make n 0 in
  Array.iteri (fun i c -> re.(i) <- c lsl fraction_bits) p;
  Array.iteri (fun i c -> im.(i) <- c lsl fraction_bits) q;
  let fre, fim = native_fft ~inverse:false re im in
  (* p and q packed as real/imaginary parts: unpack the product *)
  let pr = Array.make n 0 and pi = Array.make n 0 in
  for k = 0 to n - 1 do
    let k' = (n - k) mod n in
    let ar = (fre.(k) + fre.(k')) / 2 in
    let ai = (fim.(k) - fim.(k')) / 2 in
    let br = (fim.(k) + fim.(k')) / 2 in
    let bi = (fre.(k') - fre.(k)) / 2 in
    pr.(k) <- fix_mul ar br - fix_mul ai bi;
    pi.(k) <- fix_mul ar bi + fix_mul ai br
  done;
  let rre, rim = native_fft ~inverse:true pr pi in
  ignore rim;
  Array.map (fun v -> (v / n + (fix_one / 2)) asr fraction_bits) rre

let coefficients ~seed half =
  let prng = Support.Prng.create ~seed in
  Array.init half (fun _ -> Support.Prng.int prng 10)

(* --- simulated version --- *)

let run rt ~scale =
  let n = 1 lsl scale in
  let bits = scale in
  let s_buf = R.register_site rt ~name:"fft.buffer" in
  let s_box = R.register_site rt ~name:"fft.box" in
  (* main: 0 = cur_re, 1 = cur_im, 2 = next_re, 3 = next_im, 4 = scratch *)
  let k_main = R.register_frame rt ~name:"fft.main" ~slots:(Dsl.slots "ppppp") in
  let k_fft = R.register_frame rt ~name:"fft.stage" ~slots:(Dsl.slots "ppppp") in
  let get arr i = R.field_int rt ~obj:(R.Slot arr) ~idx:i in
  let put arr i v = R.store_field rt ~obj:(R.Slot arr) ~idx:i (R.I (R.Imm v)) in
  (* simulated fft over the arrays in slots 0/1 of the current frame;
     leaves the result in slots 0/1.  Allocates fresh arrays per stage. *)
  let sim_fft ~inverse =
    R.call rt ~key:k_fft ~args:[ R.get_slot rt 0; R.get_slot rt 1 ] (fun () ->
      let tw = twiddles n ~inverse in
      (* bit-reversal copy *)
      R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 2) ~len:n;
      R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 3) ~len:n;
      for i = 0 to n - 1 do
        let j = bit_reverse ~bits i in
        put 2 i (get 0 j);
        put 3 i (get 1 j)
      done;
      R.set_slot rt 0 (R.get_slot rt 2);
      R.set_slot rt 1 (R.get_slot rt 3);
      let len = ref 2 in
      while !len <= n do
        let half = !len / 2 in
        let step = n / !len in
        R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 2) ~len:n;
        R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 3) ~len:n;
        let i = ref 0 in
        while !i < n do
          for j = 0 to half - 1 do
            let wr, wi = tw.(j * step) in
            let a = !i + j and b = !i + j + half in
            let br = get 0 b and bi = get 1 b in
            let tr = fix_mul wr br - fix_mul wi bi in
            let ti = fix_mul wr bi + fix_mul wi br in
            let ar = get 0 a and ai = get 1 a in
            put 2 a (ar + tr);
            put 3 a (ai + ti);
            put 2 b (ar - tr);
            put 3 b (ai - ti)
          done;
          i := !i + !len
        done;
        R.set_slot rt 0 (R.get_slot rt 2);
        R.set_slot rt 1 (R.get_slot rt 3);
        len := !len * 2
      done;
      (R.get_slot rt 0, R.get_slot rt 1))
  in
  let p = coefficients ~seed:0xFF1 (n / 2) in
  let q = coefficients ~seed:0xFF2 (n / 2) in
  let expected = native_multiply p q n in
  R.call rt ~key:k_main ~args:[] (fun () ->
    (* a small boxed descriptor, so the benchmark has a record site too *)
    R.alloc_record rt ~site:s_box ~dst:(R.To_slot 4)
      [ R.I (R.Imm n); R.I (R.Imm bits) ];
    R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 0) ~len:n;
    R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 1) ~len:n;
    Array.iteri (fun i c -> put 0 i (c lsl fraction_bits)) p;
    Array.iteri (fun i c -> put 1 i (c lsl fraction_bits)) q;
    let fre, fim = sim_fft ~inverse:false in
    R.set_slot rt 0 fre;
    R.set_slot rt 1 fim;
    (* unpack the two packed transforms and multiply pointwise *)
    R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 2) ~len:n;
    R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 3) ~len:n;
    for k = 0 to n - 1 do
      let k' = (n - k) mod n in
      let ar = (get 0 k + get 0 k') / 2 in
      let ai = (get 1 k - get 1 k') / 2 in
      let br = (get 1 k + get 1 k') / 2 in
      let bi = (get 0 k' - get 0 k) / 2 in
      put 2 k (fix_mul ar br - fix_mul ai bi);
      put 3 k (fix_mul ar bi + fix_mul ai br)
    done;
    R.set_slot rt 0 (R.get_slot rt 2);
    R.set_slot rt 1 (R.get_slot rt 3);
    let rre, _rim = sim_fft ~inverse:true in
    R.set_slot rt 0 rre;
    for i = 0 to n - 1 do
      let c = (get 0 i / n + (fix_one / 2)) asr fraction_bits in
      if c <> expected.(i) then
        failwith
          (Printf.sprintf "fft: coefficient %d is %d, want %d" i c expected.(i))
    done)

let workload =
  { Spec.name = "fft";
    description =
      "Fast Fourier transform multiplying polynomials (16.16 fixed point, \
       large non-pointer arrays)";
    paper_lines = 246;
    default_scale = 11;
    run }
