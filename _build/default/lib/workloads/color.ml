(* Color (Table 1): brute-force graph colouring.  We colour a long path
   graph with three colours by depth-first search: one stack frame per
   vertex, so the simulated stack reaches [scale] frames and stays deep
   while solutions are enumerated by toggling the deepest vertices — the
   paper's prototypical deep-stack benchmark (482 frames, 74% GC-time
   reduction from stack markers).

   Enumeration stops after [cap] complete colourings via a simulated
   exception, which also exercises the marker watermark on a deep
   unwind. *)

module R = Gsc.Runtime

let cap_for scale = scale * 40

let run rt ~scale =
  let n = scale in
  if n < 2 then invalid_arg "color: scale must be at least 2";
  let cap = cap_for scale in
  let s_assign = R.register_site rt ~name:"color.assign" in
  let s_domain = R.register_site rt ~name:"color.domain" in
  (* main: 0 = counter box, 1 = scratch *)
  let k_main = R.register_frame rt ~name:"color.main" ~slots:(Dsl.slots "pp") in
  (* vertex: 0 = assignment list (arg), 1 = counter box (arg),
     2 = domain list, 3 = extended assignment *)
  let k_vertex =
    R.register_frame rt ~name:"color.vertex" ~slots:(Dsl.slots "pppp")
  in
  let rec colour v assign_val counter_val =
    R.call rt ~key:k_vertex ~args:[ assign_val; counter_val ] (fun () ->
      if v = n then begin
        (* complete colouring: bump the counter; escape at the cap *)
        let c = R.field_int rt ~obj:(R.Slot 1) ~idx:0 in
        R.store_field rt ~obj:(R.Slot 1) ~idx:0 (R.I (R.Imm (c + 1)));
        if c + 1 >= cap then R.raise_exn rt (R.Imm (c + 1))
      end
      else begin
        let prev =
          if R.is_nil rt (R.Slot 0) then -1 else Dsl.list_head_int rt ~list:0
        in
        (* materialise the candidate domain as a short-lived list *)
        R.set_slot rt 2 Mem.Value.null;
        for c = 2 downto 0 do
          if c <> prev then Dsl.cons_int rt ~site:s_domain ~list:2 c
        done;
        while not (R.is_nil rt (R.Slot 2)) do
          let c = Dsl.list_head_int rt ~list:2 in
          R.alloc_record rt ~site:s_assign ~dst:(R.To_slot 3)
            [ R.I (R.Imm c); R.P (R.Slot 0) ];
          colour (v + 1) (R.get_slot rt 3) (R.get_slot rt 1);
          Dsl.list_advance rt ~list:2
        done
      end)
  in
  R.call rt ~key:k_main ~args:[] (fun () ->
    R.alloc_record rt ~site:s_assign ~dst:(R.To_slot 0) [ R.I (R.Imm 0) ];
    let found =
      R.try_with rt
        (fun () ->
          colour 0 Mem.Value.null (R.get_slot rt 0);
          R.field_int rt ~obj:(R.Slot 0) ~idx:0)
        ~handler:(fun () -> Mem.Value.to_int (R.exn_value rt))
    in
    (* a path of n >= 2 vertices has 3 * 2^(n-1) proper 3-colourings,
       far above the cap for every scale used *)
    if found <> cap then
      failwith (Printf.sprintf "color: found %d colourings, want %d" found cap))

let workload =
  { Spec.name = "color";
    description = "Brute-force graph colouring (3-colouring a long path)";
    paper_lines = 110;
    default_scale = 400;
    run }
