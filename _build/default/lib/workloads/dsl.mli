(** Small helpers shared by the workloads.

    Simulated cons cells are two-field records; by convention field 0 is
    the head and field 1 the tail.  All helpers follow the runtime's
    rooting discipline: list heads live in frame slots, and every
    intermediate value is re-read from its slot after a potential
    collection. *)

module R = Gsc.Runtime

(** [cons_int rt ~site ~head ~list v] prepends integer [v]:
    [list := Cons (v, list)] where [list] names a slot of the current
    frame. *)
val cons_int : R.t -> site:int -> list:int -> int -> unit

(** [cons_ptr rt ~site ~head_slot ~list] prepends the pointer held in
    slot [head_slot]. *)
val cons_ptr : R.t -> site:int -> head_slot:int -> list:int -> unit

(** [list_head_int rt ~list] reads the integer head of a non-empty
    list. *)
val list_head_int : R.t -> list:int -> int

(** [list_advance rt ~list] replaces the slot's pointer by the tail. *)
val list_advance : R.t -> list:int -> unit

(** [list_length rt ~list ~cursor] computes the length, clobbering the
    [cursor] slot. *)
val list_length : R.t -> list:int -> cursor:int -> int

(** [iter_int rt ~list ~cursor f] applies [f] to each integer element,
    clobbering the [cursor] slot.  [f] may allocate. *)
val iter_int : R.t -> list:int -> cursor:int -> (int -> unit) -> unit

(** Trace shorthand: [ptr_slots n] is [n] pointer slots;
    [slots spec] builds an array from a string where 'p' is a pointer
    slot and 'i' a non-pointer slot (e.g. [slots "ppi"]). *)
val ptr_slots : int -> Rstack.Trace.slot_trace array

val slots : string -> Rstack.Trace.slot_trace array
