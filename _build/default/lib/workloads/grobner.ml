(* Gröbner (Table 1): Gröbner-basis computation by Buchberger's
   algorithm, over GF(101) in two variables with graded-lex order.
   Polynomials are simulated linked lists of monomial cells; S-polynomial
   and normal-form computation churn through short-lived cells, while
   polynomials admitted to the basis are copied into dedicated
   (long-lived) sites.  A native mirror runs the identical algorithm so
   the simulated result is checked exactly.

   Monomials pack exponents as ex * 32 + ey; the order key is
   (ex + ey) * 1024 + packed, descending. *)

module R = Gsc.Runtime

let md = 101

let ex_of e = e / 32
let ey_of e = e mod 32
let pack ex ey =
  if ex > 31 || ey > 31 then failwith "grobner: exponent overflow";
  (ex * 32) + ey

let key e = ((ex_of e + ey_of e) * 1024) + e

let inv c =
  (* Fermat: c^(md-2) mod md *)
  let rec power b e acc =
    if e = 0 then acc
    else power (b * b mod md) (e / 2) (if e land 1 = 1 then acc * b mod md else acc)
  in
  power c (md - 2) 1

let divides e1 e2 = ex_of e1 <= ex_of e2 && ey_of e1 <= ey_of e2
let expt_sub e2 e1 = pack (ex_of e2 - ex_of e1) (ey_of e2 - ey_of e1)
let expt_lcm e1 e2 = pack (max (ex_of e1) (ex_of e2)) (max (ey_of e1) (ey_of e2))

(* --- native mirror: polys as (coeff, expt) lists, sorted by key desc --- *)

module Native = struct
  type poly = (int * int) list

  let rec add (p : poly) (q : poly) : poly =
    match p, q with
    | [], r | r, [] -> r
    | (cp, ep) :: p', (cq, eq) :: q' ->
      if key ep > key eq then (cp, ep) :: add p' q
      else if key ep < key eq then (cq, eq) :: add p q'
      else begin
        let c = (cp + cq) mod md in
        if c = 0 then add p' q' else (c, ep) :: add p' q'
      end

  let cmul c e (p : poly) : poly =
    List.map (fun (cp, ep) -> (cp * c mod md, pack (ex_of ep + ex_of e) (ey_of ep + ey_of e))) p

  let neg (p : poly) = List.map (fun (c, e) -> (md - c, e)) p

  let monic (p : poly) =
    match p with
    | [] -> []
    | (c, _) :: _ -> cmul (inv c) 0 p

  let rec normal_form (p : poly) basis : poly =
    match p with
    | [] -> []
    | (cp, ep) :: rest ->
      (match List.find_opt (fun g ->
         match g with
         | (_, eg) :: _ -> divides eg ep
         | [] -> false) basis
       with
       | Some ((cg, eg) :: _ as g) ->
         let factor = cp * inv cg mod md in
         let reducer = neg (cmul factor (expt_sub ep eg) g) in
         normal_form (add p reducer) basis
       | Some [] | None -> (cp, ep) :: normal_form rest basis)

  let spoly f g =
    match f, g with
    | (cf, ef) :: _, (cg, eg) :: _ ->
      let l = expt_lcm ef eg in
      let uf = cmul (inv cf) (expt_sub l ef) f in
      let ug = cmul (inv cg) (expt_sub l eg) g in
      add uf (neg ug)
    | _, _ -> []

  let buchberger inputs =
    let basis = ref (List.filter (fun p -> p <> []) (List.map monic inputs)) in
    let pairs = ref [] in
    let n = List.length !basis in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        pairs := (List.nth !basis i, List.nth !basis j) :: !pairs
      done
    done;
    while !pairs <> [] do
      match !pairs with
      | [] -> ()
      | (f, g) :: rest ->
        pairs := rest;
        let r = monic (normal_form (spoly f g) (List.rev !basis)) in
        if r <> [] then begin
          List.iter (fun b -> pairs := (b, r) :: !pairs) !basis;
          basis := !basis @ [ r ]
        end
    done;
    !basis

  let checksum basis =
    List.fold_left
      (fun acc p ->
        List.fold_left (fun a (c, e) -> (a + (c * 1031) + e) land 0x3FFFFFFF) acc p)
      (List.length basis * 7) basis
end

let system ~seed =
  let prng = Support.Prng.create ~seed in
  let c () = 1 + Support.Prng.int prng (md - 1) in
  [ [ (1, pack 2 0); (c (), pack 0 1); (c (), pack 0 0) ];   (* x^2 + ay + b *)
    [ (1, pack 0 2); (c (), pack 1 0); (c (), pack 0 0) ];   (* y^2 + cx + d *)
    [ (1, pack 1 1); (c (), pack 0 0) ] ]                    (* xy + e *)

(* --- simulated version --- *)

(* monomial cell record: [I coeff; I expt; P next] *)

let run rt ~scale =
  let s_scratch = R.register_site rt ~name:"gb.scratch_mono" in
  let s_basis_mono = R.register_site rt ~name:"gb.basis_mono" in
  let s_basis_cons = R.register_site rt ~name:"gb.basis_cons" in
  let s_pair = R.register_site rt ~name:"gb.pair" in
  (* generic frames; slot 0/1 = poly args, 2..4 = temporaries *)
  let k_add = R.register_frame rt ~name:"gb.add" ~slots:(Dsl.slots "ppppp") in
  let k_cmul = R.register_frame rt ~name:"gb.cmul" ~slots:(Dsl.slots "ppp") in
  let k_nf = R.register_frame rt ~name:"gb.normal_form" ~slots:(Dsl.slots "ppppp") in
  let k_sp = R.register_frame rt ~name:"gb.spoly" ~slots:(Dsl.slots "ppppp") in
  let k_copy = R.register_frame rt ~name:"gb.copy" ~slots:(Dsl.slots "ppp") in
  let k_main = R.register_frame rt ~name:"gb.main" ~slots:(Dsl.slots "pppppp") in
  let coeff src = R.field_int rt ~obj:src ~idx:0 in
  let expt src = R.field_int rt ~obj:src ~idx:1 in
  let cons_mono ~site ~dst ~c ~e ~next_slot =
    R.alloc_record rt ~site ~dst
      [ R.I (R.Imm c); R.I (R.Imm e); R.P (R.Slot next_slot) ]
  in
  (* add two polys held in slots 0 and 1 of a fresh frame *)
  let rec sim_add p_val q_val =
    R.call rt ~key:k_add ~args:[ p_val; q_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then R.get_slot rt 1
      else if R.is_nil rt (R.Slot 1) then R.get_slot rt 0
      else begin
        let cp = coeff (R.Slot 0) and ep = expt (R.Slot 0) in
        let cq = coeff (R.Slot 1) and eq = expt (R.Slot 1) in
        if key ep > key eq then begin
          R.load_field rt ~obj:(R.Slot 0) ~idx:2 ~dst:(R.To_slot 2);
          R.set_slot rt 3 (sim_add (R.get_slot rt 2) (R.get_slot rt 1));
          cons_mono ~site:s_scratch ~dst:(R.To_slot 4) ~c:cp ~e:ep ~next_slot:3;
          R.get_slot rt 4
        end
        else if key ep < key eq then begin
          R.load_field rt ~obj:(R.Slot 1) ~idx:2 ~dst:(R.To_slot 2);
          R.set_slot rt 3 (sim_add (R.get_slot rt 0) (R.get_slot rt 2));
          cons_mono ~site:s_scratch ~dst:(R.To_slot 4) ~c:cq ~e:eq ~next_slot:3;
          R.get_slot rt 4
        end
        else begin
          let c = (cp + cq) mod md in
          R.load_field rt ~obj:(R.Slot 0) ~idx:2 ~dst:(R.To_slot 2);
          R.load_field rt ~obj:(R.Slot 1) ~idx:2 ~dst:(R.To_slot 3);
          let rest = sim_add (R.get_slot rt 2) (R.get_slot rt 3) in
          if c = 0 then rest
          else begin
            R.set_slot rt 3 rest;
            cons_mono ~site:s_scratch ~dst:(R.To_slot 4) ~c ~e:ep ~next_slot:3;
            R.get_slot rt 4
          end
        end
      end)
  in
  (* multiply poly (slot 0) by coefficient c and monomial e *)
  let rec sim_cmul c e p_val =
    R.call rt ~key:k_cmul ~args:[ p_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then Mem.Value.null
      else begin
        let cp = coeff (R.Slot 0) and ep = expt (R.Slot 0) in
        R.load_field rt ~obj:(R.Slot 0) ~idx:2 ~dst:(R.To_slot 1);
        R.set_slot rt 1 (sim_cmul c e (R.get_slot rt 1));
        let c' = cp * c mod md in
        let e' = pack (ex_of ep + ex_of e) (ey_of ep + ey_of e) in
        cons_mono ~site:s_scratch ~dst:(R.To_slot 2) ~c:c' ~e:e' ~next_slot:1;
        R.get_slot rt 2
      end)
  in
  let sim_neg p_val = sim_cmul (md - 1) 0 p_val in
  let sim_monic p_val =
    if Mem.Value.is_ptr p_val then
      R.call rt ~key:k_cmul ~args:[ p_val ] (fun () ->
        let c = coeff (R.Slot 0) in
        sim_cmul (inv c) 0 (R.get_slot rt 0))
    else p_val
  in
  (* normal form of poly (slot 0) w.r.t. the basis (slot 1, a cons list
     of poly pointers) *)
  let rec sim_nf p_val basis_val =
    R.call rt ~key:k_nf ~args:[ p_val; basis_val ] (fun () ->
      if R.is_nil rt (R.Slot 0) then Mem.Value.null
      else begin
        let cp = coeff (R.Slot 0) and ep = expt (R.Slot 0) in
        (* find a reducer: first basis poly whose lead divides ep *)
        R.set_slot rt 2 (R.get_slot rt 1);
        let reducer_found = ref false in
        while (not !reducer_found) && not (R.is_nil rt (R.Slot 2)) do
          R.load_field rt ~obj:(R.Slot 2) ~idx:0 ~dst:(R.To_slot 3);
          if divides (expt (R.Slot 3)) ep then reducer_found := true
          else Dsl.list_advance rt ~list:2
        done;
        if !reducer_found then begin
          (* slot 3 holds g *)
          let cg = coeff (R.Slot 3) and eg = expt (R.Slot 3) in
          let factor = cp * inv cg mod md in
          let scaled = sim_cmul factor (expt_sub ep eg) (R.get_slot rt 3) in
          R.set_slot rt 4 scaled;
          R.set_slot rt 4 (sim_neg (R.get_slot rt 4));
          let p' = sim_add (R.get_slot rt 0) (R.get_slot rt 4) in
          sim_nf p' (R.get_slot rt 1)
        end
        else begin
          R.load_field rt ~obj:(R.Slot 0) ~idx:2 ~dst:(R.To_slot 2);
          R.set_slot rt 3 (sim_nf (R.get_slot rt 2) (R.get_slot rt 1));
          cons_mono ~site:s_scratch ~dst:(R.To_slot 4) ~c:cp ~e:ep ~next_slot:3;
          R.get_slot rt 4
        end
      end)
  in
  let sim_spoly f_val g_val =
    R.call rt ~key:k_sp ~args:[ f_val; g_val ] (fun () ->
      let cf = coeff (R.Slot 0) and ef = expt (R.Slot 0) in
      let cg = coeff (R.Slot 1) and eg = expt (R.Slot 1) in
      let l = expt_lcm ef eg in
      R.set_slot rt 2 (sim_cmul (inv cf) (expt_sub l ef) (R.get_slot rt 0));
      R.set_slot rt 3 (sim_cmul (inv cg) (expt_sub l eg) (R.get_slot rt 1));
      R.set_slot rt 3 (sim_neg (R.get_slot rt 3));
      sim_add (R.get_slot rt 2) (R.get_slot rt 3))
  in
  (* copy a poly into long-lived basis cells *)
  let sim_copy_to_basis p_val =
    R.call rt ~key:k_copy ~args:[ p_val ] (fun () ->
      let rec copy () =
        if R.is_nil rt (R.Slot 0) then Mem.Value.null
        else begin
          let c = coeff (R.Slot 0) and e = expt (R.Slot 0) in
          R.load_field rt ~obj:(R.Slot 0) ~idx:2 ~dst:(R.To_slot 1);
          R.set_slot rt 0 (R.get_slot rt 1);
          R.set_slot rt 2 (copy ());
          cons_mono ~site:s_basis_mono ~dst:(R.To_slot 2) ~c ~e ~next_slot:2;
          R.get_slot rt 2
        end
      in
      copy ())
  in
  (* build a poly literal from a native (c, e) list *)
  let sim_of_native p =
    R.call rt ~key:k_copy ~args:[ Mem.Value.null ] (fun () ->
      R.set_slot rt 2 Mem.Value.null;
      List.iter
        (fun (c, e) ->
          cons_mono ~site:s_scratch ~dst:(R.To_slot 2) ~c ~e ~next_slot:2)
        (List.rev p);
      R.get_slot rt 2)
  in
  let dump_basis () =
    let buf = Buffer.create 256 in
    R.set_slot rt 2 (R.get_slot rt 0);
    while not (R.is_nil rt (R.Slot 2)) do
      R.load_field rt ~obj:(R.Slot 2) ~idx:0 ~dst:(R.To_slot 3);
      R.set_slot rt 4 (R.get_slot rt 3);
      Buffer.add_string buf "  poly:";
      while not (R.is_nil rt (R.Slot 4)) do
        Buffer.add_string buf
          (Printf.sprintf " %d*x%dy%d" (coeff (R.Slot 4)) (ex_of (expt (R.Slot 4)))
             (ey_of (expt (R.Slot 4))));
        R.load_field rt ~obj:(R.Slot 4) ~idx:2 ~dst:(R.To_slot 4)
      done;
      Buffer.add_char buf '\n';
      Dsl.list_advance rt ~list:2
    done;
    Buffer.contents buf
  in
  let sim_checksum_basis () =
    (* basis cons list in main slot 0 (most recent first); mirror appends,
       so walk the reversal: collect pointers natively first *)
    let acc = ref 0 and count = ref 0 in
    R.set_slot rt 2 (R.get_slot rt 0);
    let polys = ref [] in
    while not (R.is_nil rt (R.Slot 2)) do
      R.load_field rt ~obj:(R.Slot 2) ~idx:0 ~dst:(R.To_slot 3);
      incr count;
      (* accumulate monomial checksum for this poly *)
      let poly_sum = ref 0 in
      R.set_slot rt 4 (R.get_slot rt 3);
      while not (R.is_nil rt (R.Slot 4)) do
        let c = coeff (R.Slot 4) and e = expt (R.Slot 4) in
        poly_sum := (!poly_sum + (c * 1031) + e) land 0x3FFFFFFF;
        R.load_field rt ~obj:(R.Slot 4) ~idx:2 ~dst:(R.To_slot 4)
      done;
      polys := !poly_sum :: !polys;
      Dsl.list_advance rt ~list:2
    done;
    (* the mirror's fold seeds its accumulator with 7 per basis element *)
    acc := !count * 7;
    List.iter (fun s -> acc := (!acc + s) land 0x3FFFFFFF) !polys;
    (!count, !acc)
  in
  R.call rt ~key:k_main ~args:[] (fun () ->
    for sys = 1 to scale do
      let inputs = system ~seed:(0x6B0 + sys) in
      let native_basis = Native.buchberger inputs in
      let expected = Native.checksum native_basis in
      (* slot 0 = basis list (newest first), slot 1 = pair queue *)
      R.set_slot rt 0 Mem.Value.null;
      R.set_slot rt 1 Mem.Value.null;
      (* basis := monic inputs (in order), rooting each polynomial in the
         basis list before the next is built — a native list of simulated
         pointers would go stale across the collections the construction
         triggers *)
      List.iter
        (fun p ->
          R.set_slot rt 2 (sim_of_native p);
          R.set_slot rt 2 (sim_monic (R.get_slot rt 2));
          R.alloc_record rt ~site:s_basis_cons ~dst:(R.To_slot 0)
            [ R.P (R.Slot 2); R.P (R.Slot 0) ])
        inputs;
      (* basis list is newest-first; element i of the mirror's basis is at
         position (len - 1 - i) from the head *)
      let basis_len = ref (List.length inputs) in
      let nth_basis i =
        let from_head = !basis_len - 1 - i in
        R.set_slot rt 2 (R.get_slot rt 0);
        for _ = 1 to from_head do
          Dsl.list_advance rt ~list:2
        done;
        R.load_field rt ~obj:(R.Slot 2) ~idx:0 ~dst:(R.To_slot 2);
        R.get_slot rt 2
      in
      (* pair queue: records [I i; I j; P next], LIFO like the mirror *)
      let push_pair i j =
        R.alloc_record rt ~site:s_pair ~dst:(R.To_slot 1)
          [ R.I (R.Imm i); R.I (R.Imm j); R.P (R.Slot 1) ]
      in
      let n = List.length inputs in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          push_pair i j
        done
      done;
      while not (R.is_nil rt (R.Slot 1)) do
        let i = R.field_int rt ~obj:(R.Slot 1) ~idx:0 in
        let j = R.field_int rt ~obj:(R.Slot 1) ~idx:1 in
        R.load_field rt ~obj:(R.Slot 1) ~idx:2 ~dst:(R.To_slot 1);
        let f = nth_basis i in
        R.set_slot rt 3 f;
        let g = nth_basis j in
        R.set_slot rt 4 g;
        let s = sim_spoly (R.get_slot rt 3) (R.get_slot rt 4) in
        R.set_slot rt 3 s;
        let r = sim_nf (R.get_slot rt 3) (R.get_slot rt 0) in
        R.set_slot rt 3 r;
        R.set_slot rt 3 (sim_monic (R.get_slot rt 3));
        if not (R.is_nil rt (R.Slot 3)) then begin
          (* new basis element: pair it with everything, then append *)
          R.set_slot rt 3 (sim_copy_to_basis (R.get_slot rt 3));
          for b = 0 to !basis_len - 1 do
            push_pair b !basis_len
          done;
          R.alloc_record rt ~site:s_basis_cons ~dst:(R.To_slot 0)
            [ R.P (R.Slot 3); R.P (R.Slot 0) ];
          incr basis_len
        end
      done;
      let count, acc = sim_checksum_basis () in
      if count <> List.length native_basis || acc <> expected then
        failwith
          (Printf.sprintf
             "grobner: system %d basis (%d, %d), want (%d, %d)\n%s" sys count
             acc (List.length native_basis) expected (dump_basis ()))
    done)

let workload =
  { Spec.name = "grobner";
    description =
      "Groebner basis computation (Buchberger over GF(101), two \
       variables, graded-lex order)";
    paper_lines = 904;
    default_scale = 12;
    run }
