(* Checksum (Table 1): the Foxnet checksum fragment.  A 16 KB buffer is
   created once and checksummed [scale] times with an iterator; the
   iterator boxes its accumulator on every step, which is where the
   paper's enormous record churn with near-zero live data comes from.
   Stack depth stays at ~4 frames (main -> iterate -> fold step). *)

module R = Gsc.Runtime

let buffer_words = 2048 (* 16 KB *)

(* The reference checksum, computed natively: a 16-bit ones'-complement-ish
   rolling sum over the deterministic buffer contents. *)
let expected_checksum ~iters =
  let prng = Support.Prng.create ~seed:0xC45 in
  let data = Array.init buffer_words (fun _ -> Support.Prng.int prng 65536) in
  let one_pass () =
    Array.fold_left (fun acc v -> (acc + v) land 0xFFFF) 0 data
  in
  let sum = ref 0 in
  for _ = 1 to iters do
    sum := (!sum + one_pass ()) land 0xFFFF
  done;
  !sum

let run rt ~scale =
  let s_buf = R.register_site rt ~name:"chk.buffer" in
  let s_acc = R.register_site rt ~name:"chk.fold_acc" in
  (* main: 0 = buffer ptr, 1 = outer sum (int) *)
  let k_main = R.register_frame rt ~name:"chk.main" ~slots:(Dsl.slots "pi") in
  (* iterate: 0 = buffer, 1 = acc record ptr, 2 = index *)
  let k_iter = R.register_frame rt ~name:"chk.iterate" ~slots:(Dsl.slots "ppi") in
  (* step: 0 = buffer, 1 = acc record *)
  let k_step = R.register_frame rt ~name:"chk.step" ~slots:(Dsl.slots "pp") in
  let prng = Support.Prng.create ~seed:0xC45 in
  R.call rt ~key:k_main ~args:[] (fun () ->
    (* create the buffer once and fill it deterministically *)
    R.alloc_nonptr_array rt ~site:s_buf ~dst:(R.To_slot 0) ~len:buffer_words;
    for i = 0 to buffer_words - 1 do
      R.store_field rt ~obj:(R.Slot 0) ~idx:i
        (R.I (R.Imm (Support.Prng.int prng 65536)))
    done;
    R.set_slot rt 1 (Mem.Value.Int 0);
    for _ = 1 to scale do
      let pass_sum =
        R.call rt ~key:k_iter
          ~args:[ R.get_slot rt 0; Mem.Value.null; Mem.Value.Int 0 ]
          (fun () ->
            (* boxed accumulator: a fresh record per element, exactly the
               short-lived allocation the paper's iterators produce *)
            R.alloc_record rt ~site:s_acc ~dst:(R.To_slot 1) [ R.I (R.Imm 0) ];
            let len = R.obj_length rt ~obj:(R.Slot 0) in
            for i = 0 to len - 1 do
              R.call rt ~key:k_step
                ~args:[ R.get_slot rt 0; R.get_slot rt 1 ]
                (fun () ->
                  let acc = R.field_int rt ~obj:(R.Slot 1) ~idx:0 in
                  let v = R.field_int rt ~obj:(R.Slot 0) ~idx:i in
                  R.alloc_record rt ~site:s_acc ~dst:(R.To_slot 1)
                    [ R.I (R.Imm ((acc + v) land 0xFFFF)) ];
                  R.get_slot rt 1)
              |> R.set_slot rt 1
            done;
            R.field_int rt ~obj:(R.Slot 1) ~idx:0)
      in
      let outer = Mem.Value.to_int (R.get_slot rt 1) in
      R.set_slot rt 1 (Mem.Value.Int ((outer + pass_sum) land 0xFFFF))
    done;
    let got = Mem.Value.to_int (R.get_slot rt 1) in
    let want = expected_checksum ~iters:scale in
    if got <> want then
      failwith (Printf.sprintf "checksum: got %d, want %d" got want))

let workload =
  { Spec.name = "checksum";
    description =
      "Checksum fragment from the Foxnet: a 16KB buffer is checksummed \
       with a boxing iterator many times";
    paper_lines = 241;
    default_scale = 40;
    run }
