(* Generational stack collection on a deep non-tail recursion (Section 5
   of the paper).

   A recursive walk builds a list one element per stack frame, so the
   whole chain of activation records stays live while garbage churns the
   nursery.  The same program runs twice — without and with stack
   markers — and the frame-decode counters show the technique's effect:
   with markers, almost every frame is reused from the scan cache.

   Run with:  dune exec examples/deep_stack.exe *)

module R = Gsc.Runtime

let depth = 600
let junk_per_level = 30

let run cfg =
  let rt = R.create cfg in
  Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
  let site = R.register_site rt ~name:"deep.node" in
  let site_junk = R.register_site rt ~name:"deep.junk" in
  let key =
    R.register_frame rt ~name:"deep.level"
      ~slots:[| Rstack.Trace.Ptr; Rstack.Trace.Ptr |]
  in
  let rec go level =
    R.call rt ~key ~args:[] (fun () ->
      R.alloc_record rt ~site ~dst:(R.To_slot 0)
        [ R.I (R.Imm level); R.P (R.Slot 0) ];
      for _ = 1 to junk_per_level do
        R.alloc_record rt ~site:site_junk ~dst:(R.To_slot 1)
          [ R.I (R.Imm 0); R.I (R.Imm 0) ]
      done;
      if level = 0 then 0
      else go (level - 1) + R.field_int rt ~obj:(R.Slot 0) ~idx:0)
  in
  let total = go depth in
  assert (total = depth * (depth + 1) / 2);
  let s = R.stats rt in
  let clock = Harness.Simclock.of_stats s in
  Printf.printf "%-12s gcs=%-4d frames decoded=%-7d reused=%-7d \
                 stack=%.4fs copy=%.4fs\n"
    (Gsc.Config.name cfg)
    (Collectors.Gc_stats.gcs s)
    s.Collectors.Gc_stats.frames_decoded s.Collectors.Gc_stats.frames_reused
    clock.Harness.Simclock.stack_seconds clock.Harness.Simclock.copy_seconds

let () =
  let budget = 256 * 1024 in
  let small_nursery cfg = { cfg with Gsc.Config.nursery_bytes_max = 8 * 1024 } in
  print_endline "deep non-tail recursion, 600 frames live across collections:";
  run (small_nursery (Gsc.Config.generational ~budget_bytes:budget));
  run (small_nursery (Gsc.Config.with_markers ~budget_bytes:budget))
