(* The full profile-driven pretenuring pipeline (Section 6 of the paper)
   on the Nqueen workload:

   1. a profiling run gathers per-site lifetimes,
   2. the Figure 2 report is printed and the 80%-old sites are selected,
   3. the production run pretenures those sites,
   4. copied-bytes and GC time are compared against the baseline.

   Run with:  dune exec examples/pretenure_pipeline.exe *)

module R = Gsc.Runtime

let budget = 512 * 1024
let nursery = 8 * 1024
let workload = Workloads.Registry.find "nqueen"
let scale = 9

let tune cfg = { cfg with Gsc.Config.nursery_bytes_max = nursery }

let run cfg =
  let rt = R.create cfg in
  Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
  workload.Workloads.Spec.run rt ~scale;
  (R.stats rt, R.profile rt)

let () =
  (* 1-2: profile *)
  let profiled_cfg =
    tune { (Gsc.Config.generational ~budget_bytes:budget) with
           Gsc.Config.profiling = true }
  in
  let _, profile = run profiled_cfg in
  let data = Option.get profile in
  print_string (Heap_profile.Report.render ~title:"nqueen" ~cutoff:0.8 data);
  (* 3: derive the policy *)
  let policy =
    Gsc.Pretenure.of_profile data ~cutoff:0.8 ~min_objects:32
      ~scan_elision:false
  in
  Printf.printf "\npretenured sites: %s\n\n"
    (String.concat ", "
       (List.map string_of_int (Gsc.Pretenure.pretenured_sites policy)));
  (* 4: compare *)
  let report name cfg =
    let stats, _ = run cfg in
    let clock = Harness.Simclock.of_stats stats in
    Printf.printf "%-22s copied %-8s pretenured %-8s gc %.4fs\n" name
      (Support.Units.bytes (Collectors.Gc_stats.bytes_copied stats))
      (Support.Units.bytes
         (stats.Collectors.Gc_stats.words_pretenured
          * Mem.Memory.bytes_per_word))
      (Harness.Simclock.gc_seconds clock)
  in
  report "baseline (markers)" (tune (Gsc.Config.with_markers ~budget_bytes:budget));
  report "with pretenuring"
    (tune (Gsc.Config.with_pretenuring ~budget_bytes:budget policy))
