examples/quickstart.mli:
