examples/trace_table_demo.mli:
