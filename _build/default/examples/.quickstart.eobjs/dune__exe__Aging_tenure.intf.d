examples/aging_tenure.mli:
