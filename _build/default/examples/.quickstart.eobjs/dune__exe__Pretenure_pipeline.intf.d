examples/pretenure_pipeline.mli:
