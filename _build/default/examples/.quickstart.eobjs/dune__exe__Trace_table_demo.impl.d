examples/trace_table_demo.ml: Array Format Fun Gsc Mem Printf Rstack
