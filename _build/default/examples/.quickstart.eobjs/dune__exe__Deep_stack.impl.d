examples/deep_stack.ml: Collectors Fun Gsc Harness Printf Rstack
