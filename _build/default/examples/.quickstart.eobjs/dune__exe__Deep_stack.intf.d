examples/deep_stack.mli:
