examples/aging_tenure.ml: Collectors Fun Gsc List Mem Printf Support Workloads
