examples/quickstart.ml: Collectors Fun Gsc Mem Printf Rstack Support
