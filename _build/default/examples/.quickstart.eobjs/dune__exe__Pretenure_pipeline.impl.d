examples/pretenure_pipeline.ml: Collectors Fun Gsc Harness Heap_profile List Mem Option Printf String Support Workloads
