(* Figure 1 of the paper: a stack frame and its trace-table entry.

   Registers a frame whose slots exercise all four trace kinds — pointer,
   non-pointer, callee-save and compute — pushes it with live data, and
   prints both the table entry (the paper's right-hand box) and what the
   two-pass scan derives from it.

   Run with:  dune exec examples/trace_table_demo.exe *)

module R = Gsc.Runtime
module T = Rstack.Trace

let () =
  let rt = R.create (Gsc.Config.generational ~budget_bytes:(256 * 1024)) in
  Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
  let site = R.register_site rt ~name:"demo.record" in
  (* the caller keeps a pointer in register 10, which the callee saves in
     its sixth slot — figure 1's "COMPUTE: CALLEE $10" scenario *)
  let caller_regs = Rstack.Trace_table.plain_regs () in
  caller_regs.(10) <- T.Reg_ptr;
  let caller_key =
    R.register_frame_regs rt ~name:"demo.caller" ~slots:[| T.Ptr |]
      ~regs:caller_regs
  in
  let callee_regs = Rstack.Trace_table.plain_regs () in
  callee_regs.(10) <- T.Reg_callee_save;
  let callee_key =
    R.register_frame_regs rt ~name:"demo.callee"
      ~slots:
        [| T.Non_ptr;                        (* slot 0: an integer *)
           T.Ptr;                            (* slot 1: a pointer *)
           T.Ptr;                            (* slot 2: a pointer *)
           T.Non_ptr;                        (* slot 3: a runtime type *)
           T.Compute (T.Type_in_slot 3);     (* slot 4: described by slot 3 *)
           T.Callee_save 10 |]               (* slot 5: caller's $10 *)
      ~regs:callee_regs
  in
  (* print the trace-table entry, Figure 1 style (the runtime's table is
     internal, so mirror the entry on a scratch table for printing) *)
  let scratch = Rstack.Trace_table.create () in
  let scratch_key =
    Rstack.Trace_table.register scratch
      { Rstack.Trace_table.name = "demo.callee";
        slots =
          [| T.Non_ptr; T.Ptr; T.Ptr; T.Non_ptr;
             T.Compute (T.Type_in_slot 3); T.Callee_save 10 |];
        regs = callee_regs }
  in
  Format.printf "%a@."
    (Rstack.Trace_table.pp_entry ~key:callee_key)
    (Rstack.Trace_table.lookup scratch scratch_key);
  (* build the frames and scan *)
  R.call rt ~key:caller_key ~args:[] (fun () ->
    R.alloc_record rt ~site ~dst:(R.To_slot 0) [ R.I (R.Imm 1) ];
    R.alloc_record rt ~site ~dst:(R.To_reg 10) [ R.I (R.Imm 2) ];
    R.call rt ~key:callee_key ~args:[] (fun () ->
      R.set_slot rt 0 (Mem.Value.Int 42);
      R.alloc_record rt ~site ~dst:(R.To_slot 1) [ R.I (R.Imm 3) ];
      R.alloc_record rt ~site ~dst:(R.To_slot 2) [ R.I (R.Imm 4) ];
      (* slot 3 says "slot 4 is boxed"; slot 4 then needs a pointer *)
      R.set_slot rt 3 (Mem.Value.Int Rstack.Trace.type_code_boxed);
      R.alloc_record rt ~site ~dst:(R.To_slot 4) [ R.I (R.Imm 5) ];
      (* save the caller's register 10 into slot 5, as the callee would *)
      R.set_slot rt 5 (R.get_reg rt 10);
      let live = R.check_heap rt in
      Printf.printf
        "two-pass scan finds every root: %d live objects (expected 5)\n" live))
