(* Section 7.2's prediction, live: "In some systems, objects in the
   nursery are not immediately promoted ... objects that are tenured are
   copied several times before being promoted, [so] pretenuring in such
   systems is likely to yield an even greater benefit."

   This example runs a list-building program under tenure thresholds
   1 (the paper's immediate promotion), 2 and 3, with and without
   pretenuring of the long-lived site, and prints the bytes the collector
   copied in each configuration.

   Run with:  dune exec examples/aging_tenure.exe *)

module R = Gsc.Runtime

let budget = 512 * 1024
let nursery = 8 * 1024

let program rt =
  let s_keep = R.register_site rt ~name:"aging.keeper" in
  let s_churn = R.register_site rt ~name:"aging.churn" in
  let key = R.register_frame rt ~name:"aging.main" ~slots:(Workloads.Dsl.slots "pp") in
  R.call rt ~key ~args:[] (fun () ->
    for i = 1 to 20_000 do
      R.alloc_record rt ~site:s_churn ~dst:(R.To_slot 1)
        [ R.I (R.Imm i); R.I (R.Imm i) ];
      if i mod 20 = 0 then
        R.alloc_record rt ~site:s_keep ~dst:(R.To_slot 0)
          [ R.I (R.Imm i); R.P (R.Slot 0) ]
    done);
  s_keep

let run ~threshold ~pretenure =
  let policy =
    if pretenure then Gsc.Pretenure.of_sites ~sites:[ 0 ] ~no_scan:[]
    else Gsc.Pretenure.none
  in
  let cfg =
    { (Gsc.Config.generational ~budget_bytes:budget) with
      Gsc.Config.nursery_bytes_max = nursery;
      tenure_threshold = threshold;
      pretenure = policy }
  in
  let rt = R.create cfg in
  Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
  ignore (program rt : int);
  let s = R.stats rt in
  (Collectors.Gc_stats.bytes_copied s,
   s.Collectors.Gc_stats.words_pretenured * Mem.Memory.bytes_per_word)

let () =
  Printf.printf
    "threshold | copied (no pretenure) | copied (pretenured) | saved\n";
  Printf.printf
    "----------+-----------------------+---------------------+---------\n";
  List.iter
    (fun threshold ->
      let base, _ = run ~threshold ~pretenure:false in
      let pre, pretenured = run ~threshold ~pretenure:true in
      Printf.printf "%9d | %21s | %19s | %s (pretenured %s)\n" threshold
        (Support.Units.bytes base)
        (Support.Units.bytes pre)
        (Support.Units.bytes (base - pre))
        (Support.Units.bytes pretenured))
    [ 1; 2; 3 ];
  print_newline ();
  print_endline
    "The saving grows with the threshold: every extra collection an object\n\
     must survive before tenure is another copy that pretenuring avoids."
