(* Quickstart: the mutator API in a nutshell.

   Builds a linked list of squares on the simulated heap under the
   generational collector, sums it, and prints the collector statistics.

   Run with:  dune exec examples/quickstart.exe *)

module R = Gsc.Runtime

let () =
  (* 1 MB memory budget, generational collection *)
  let rt = R.create (Gsc.Config.generational ~budget_bytes:(1024 * 1024)) in
  Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
  (* every allocation names a site — the unit of pretenuring decisions *)
  let site_cons = R.register_site rt ~name:"quickstart.cons" in
  (* every simulated function describes its frame to the collector:
     slot 0 holds a pointer (the list), slot 1 a raw integer *)
  let key =
    R.register_frame rt ~name:"quickstart.main"
      ~slots:[| Rstack.Trace.Ptr; Rstack.Trace.Non_ptr |]
  in
  let total =
    R.call rt ~key ~args:[] (fun () ->
      R.set_slot rt 0 Mem.Value.null;
      for i = 1 to 10_000 do
        (* cons cell: { square; next } — the collector may run inside
           this allocation; the result lands rooted in slot 0 *)
        R.alloc_record rt ~site:site_cons ~dst:(R.To_slot 0)
          [ R.I (R.Imm (i * i)); R.P (R.Slot 0) ]
      done;
      (* walk the list *)
      let sum = ref 0 in
      while not (R.is_nil rt (R.Slot 0)) do
        sum := !sum + R.field_int rt ~obj:(R.Slot 0) ~idx:0;
        R.load_field rt ~obj:(R.Slot 0) ~idx:1 ~dst:(R.To_slot 0)
      done;
      !sum)
  in
  Printf.printf "sum of squares 1..10000 = %d\n" total;
  let stats = R.stats rt in
  Printf.printf "collections: %d minor + %d major\n"
    stats.Collectors.Gc_stats.minor_gcs stats.Collectors.Gc_stats.major_gcs;
  Printf.printf "allocated %s, copied %s, max live %s\n"
    (Support.Units.bytes (Collectors.Gc_stats.bytes_allocated stats))
    (Support.Units.bytes (Collectors.Gc_stats.bytes_copied stats))
    (Support.Units.bytes (Collectors.Gc_stats.max_live_bytes stats));
  Printf.printf "heap check: %d live objects\n" (R.check_heap rt)
