(* The benchmark harness.

   Part 1 — Bechamel micro-benchmarks, one per paper table/figure: each
   [Test.make] runs the representative workload/configuration pair of
   that table at a small scale, so regressions in any collector path show
   up as a timing change for its table's test.

   Part 2 — the actual reproduction: every table and figure regenerated
   by the experiment harness (deterministic simulated-clock figures; see
   EXPERIMENTS.md). *)

open Bechamel
open Toolkit

module R = Gsc.Runtime

let bench_scale (name : string) =
  match name with
  | "checksum" -> 2
  | "color" -> 40
  | "fft" -> 8
  | "grobner" -> 1
  | "knuth-bendix" -> 2
  | "lexgen" -> 4
  | "life" -> 10
  | "nqueen" -> 7
  | "peg" -> 800
  | "pia" -> 1
  | "simple" -> 4
  | _ -> 1

let small_nursery cfg = { cfg with Gsc.Config.nursery_bytes_max = 8 * 1024 }

let run_workload name cfg_of =
  let w = Workloads.Registry.find name in
  fun () ->
    let rt = R.create (cfg_of ()) in
    Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
    w.Workloads.Spec.run rt ~scale:(bench_scale name)

let budget = 2 * 1024 * 1024

let table_tests =
  [ (* Table 2: allocation characteristics — instrumented generational run *)
    Test.make ~name:"table2.alloc_characteristics(life,gen)"
      (Staged.stage
         (run_workload "life" (fun () ->
            small_nursery (Gsc.Config.generational ~budget_bytes:budget))));
    (* Table 3: semispace collection *)
    Test.make ~name:"table3.semispace(life)"
      (Staged.stage
         (run_workload "life" (fun () ->
            Gsc.Config.semispace ~budget_bytes:budget)));
    (* Table 4: generational collection *)
    Test.make ~name:"table4.generational(life)"
      (Staged.stage
         (run_workload "life" (fun () ->
            small_nursery (Gsc.Config.generational ~budget_bytes:budget))));
    (* Table 5: stack markers on a deep-stack workload *)
    Test.make ~name:"table5.no_markers(color)"
      (Staged.stage
         (run_workload "color" (fun () ->
            small_nursery (Gsc.Config.generational ~budget_bytes:budget))));
    Test.make ~name:"table5.markers(color)"
      (Staged.stage
         (run_workload "color" (fun () ->
            small_nursery (Gsc.Config.with_markers ~budget_bytes:budget))));
    (* Table 6: the full pretenuring pipeline (profile, derive, rerun) *)
    Test.make ~name:"table6.pretenure(nqueen)"
      (Staged.stage
         (let w = Workloads.Registry.find "nqueen" in
          fun () ->
            let profiled =
              R.create
                (small_nursery
                   { (Gsc.Config.generational ~budget_bytes:budget) with
                     Gsc.Config.profiling = true })
            in
            let data =
              Fun.protect ~finally:(fun () -> R.destroy profiled) @@ fun () ->
              w.Workloads.Spec.run profiled ~scale:(bench_scale "nqueen");
              Option.get (R.profile profiled)
            in
            let policy =
              Gsc.Pretenure.of_profile data ~cutoff:0.8 ~min_objects:32
                ~scan_elision:false
            in
            let rt =
              R.create
                (small_nursery
                   (Gsc.Config.with_pretenuring ~budget_bytes:budget policy))
            in
            Fun.protect ~finally:(fun () -> R.destroy rt) @@ fun () ->
            w.Workloads.Spec.run rt ~scale:(bench_scale "nqueen")));
    (* Table 7: the technique spread on one workload *)
    Test.make ~name:"table7.semi(nqueen)"
      (Staged.stage
         (run_workload "nqueen" (fun () ->
            Gsc.Config.semispace ~budget_bytes:budget)));
    Test.make ~name:"table7.markers(nqueen)"
      (Staged.stage
         (run_workload "nqueen" (fun () ->
            small_nursery (Gsc.Config.with_markers ~budget_bytes:budget))));
    (* Figure 2: the profiling instrumentation itself *)
    Test.make ~name:"figure2.profiling(nqueen)"
      (Staged.stage
         (run_workload "nqueen" (fun () ->
            small_nursery
              { (Gsc.Config.generational ~budget_bytes:budget) with
                Gsc.Config.profiling = true })));
    (* Ablation: write-barrier kinds on the mutation-heavy workload *)
    Test.make ~name:"ablation.barrier_ssb(peg)"
      (Staged.stage
         (run_workload "peg" (fun () ->
            small_nursery (Gsc.Config.generational ~budget_bytes:budget))));
    Test.make ~name:"ablation.barrier_remset(peg)"
      (Staged.stage
         (run_workload "peg" (fun () ->
            small_nursery
              { (Gsc.Config.generational ~budget_bytes:budget) with
                Gsc.Config.barrier = Collectors.Generational.Barrier_remset })));
    Test.make ~name:"ablation.barrier_cards(peg)"
      (Staged.stage
         (run_workload "peg" (fun () ->
            small_nursery
              { (Gsc.Config.generational ~budget_bytes:budget) with
                Gsc.Config.barrier = Collectors.Generational.Barrier_cards })));
    (* Section 7.2 extensions: aging nursery and scan elision *)
    Test.make ~name:"ablation.aging_nursery(life)"
      (Staged.stage
         (run_workload "life" (fun () ->
            small_nursery
              { (Gsc.Config.generational ~budget_bytes:budget) with
                Gsc.Config.tenure_threshold = 3 })))
  ]

let run_bechamel () =
  let tests = Test.make_grouped ~name:"repro" table_tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_endline "Bechamel micro-benchmarks (one per table/figure):";
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with
        | Some (e :: _) -> Printf.sprintf "%12.0f ns/run" e
        | Some [] | None -> "          (n/a)"
      in
      Printf.printf "  %-42s %s\n" name est)
    rows;
  print_newline ()

let () =
  let factor =
    match Sys.getenv_opt "REPRO_FACTOR" with
    | Some f -> float_of_string f
    | None -> 1.0
  in
  run_bechamel ();
  print_endline
    "Full reproduction (simulated-clock figures; see EXPERIMENTS.md):";
  print_newline ();
  print_string (Harness.Suite.render_all ~factor)
