(* The `repro` command-line tool: regenerate any table or figure of the
   paper, profile a workload, derive and save pretenuring policies, or
   run a single workload under a chosen configuration. *)

open Cmdliner

let factor_arg =
  let doc =
    "Scale factor applied to every workload's default problem size."
  in
  Arg.(value & opt float 1.0 & info [ "factor"; "f" ] ~docv:"FACTOR" ~doc)

let workload_arg =
  let doc = "Workload name (see `repro list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-14s %s\n" w.Workloads.Spec.name
          w.Workloads.Spec.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark workloads")
    Term.(const run $ const ())

(* --- tables --- *)

let tables_cmd =
  let only =
    let doc = "Render only this item (table1..table7, figure2, ablation)." in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let trace =
    let doc = "Also write a JSONL GC trace of the whole run to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run factor only trace_path =
    match only with
    | None -> print_string (Harness.Suite.render_all ?trace_path ~factor ())
    | Some id ->
      (match Harness.Suite.render_one ?trace_path ~factor id with
       | s -> print_string s
       | exception Not_found ->
         prerr_endline ("unknown item: " ^ id);
         exit 2)
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's tables and figures (all by default)")
    Term.(const run $ factor_arg $ only $ trace)

(* --- figure2 --- *)

let figure2_cmd =
  let run factor = print_string (Harness.Figure2.render ~factor) in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"Heap-profile reports for Knuth-Bendix and Nqueen (Figure 2)")
    Term.(const run $ factor_arg)

(* --- ablation --- *)

let ablation_cmd =
  let run factor = print_string (Harness.Ablation.render ~factor) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations (see DESIGN.md)")
    Term.(const run $ factor_arg)

(* --- profile --- *)

let profile_cmd =
  let out =
    let doc = "Write the raw profile to this file (for later pretenuring)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run factor name out =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 2
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let data = Harness.Runs.profile_of ~workload:w ~scale:sc in
      print_string
        (Heap_profile.Report.render ~title:name ~cutoff:Harness.Runs.cutoff
           data);
      (match out with
       | None -> ()
       | Some path ->
         Heap_profile.Profile_data.save data ~path;
         Printf.printf "profile written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Heap-profile a workload and print the Figure 2 report")
    Term.(const run $ factor_arg $ workload_arg $ out)

(* --- check --- *)

let check_cmd =
  let run factor =
    let out = Harness.Claims.render ~factor in
    print_string out;
    if not (Harness.Claims.all_pass ~factor) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify the paper's headline claims against fresh measurements \
          (exit 1 on any failure)")
    Term.(const run $ factor_arg)

(* --- calibrate --- *)

let calibrate_cmd =
  let run factor =
    Printf.printf "%-14s %12s %12s  (Min = 2 x max live; budgets are k*Min)\n"
      "Workload" "Max live" "Min";
    List.iter
      (fun w ->
        let sc = Harness.Runs.scale ~factor w in
        let live = Harness.Calibrate.max_live_bytes ~workload:w ~scale:sc in
        Printf.printf "%-14s %12s %12s\n" w.Workloads.Spec.name
          (Support.Units.bytes live)
          (Support.Units.bytes (Harness.Calibrate.min_bytes ~workload:w ~scale:sc)))
      Workloads.Registry.all
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Measure Min (twice the maximum live data) for every workload")
    Term.(const run $ factor_arg)

(* --- run --- *)

let run_cmd =
  let technique =
    let techniques =
      [ ("semi", Harness.Runs.Semi); ("gen", Harness.Runs.Gen);
        ("markers", Harness.Runs.Markers);
        ("pretenure", Harness.Runs.Pretenure);
        ("pretenure-elide", Harness.Runs.Pretenure_elide) ]
    in
    let doc = "Collector technique: semi, gen, markers, pretenure, \
               pretenure-elide." in
    Arg.(value & opt (enum techniques) Harness.Runs.Gen
         & info [ "technique"; "t" ] ~docv:"TECH" ~doc)
  in
  let k_arg =
    let doc = "Memory multiple of the calibrated Min." in
    Arg.(value & opt float 4.0 & info [ "k" ] ~docv:"K" ~doc)
  in
  let pretenure_from =
    let doc =
      "Derive the pretenuring policy from this saved profile (see `repro \
       profile --out`) instead of profiling in-process."
    in
    Arg.(value & opt (some file) None
         & info [ "pretenure-from" ] ~docv:"FILE" ~doc)
  in
  let policy_arg =
    let doc =
      "Pretenure from a policy file emitted by `repro gc-profile \
       emit-policy` (the trace-driven loop; no profiler attached)."
    in
    Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE" ~doc)
  in
  let verify =
    let doc = "Walk and check the whole heap after every collection." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run factor name technique k pretenure_from policy verify =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 2
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let m =
        match pretenure_from, policy, verify with
        | None, None, false ->
          Harness.Runs.measure ~workload:w ~scale:sc ~technique ~k
        | _ ->
          (* ad-hoc configuration: saved profile or policy file, and/or
             verification *)
          let budget = Harness.Calibrate.budget_for ~workload:w ~scale:sc ~k in
          let base =
            match technique, pretenure_from, policy with
            | _, _, Some path ->
              (match Gsc.Config.with_policy_file ~budget_bytes:budget path with
               | Ok cfg -> cfg
               | Error msg ->
                 prerr_endline ("policy " ^ path ^ ": " ^ msg);
                 exit 1)
            | _, Some path, None ->
              let data = Heap_profile.Profile_data.load ~path in
              let policy =
                Gsc.Pretenure.of_profile data ~cutoff:Harness.Runs.cutoff
                  ~min_objects:Harness.Runs.min_objects
                  ~scan_elision:(technique = Harness.Runs.Pretenure_elide)
              in
              Gsc.Config.with_pretenuring ~budget_bytes:budget policy
            | Harness.Runs.Semi, None, None ->
              Gsc.Config.semispace ~budget_bytes:budget
            | Harness.Runs.Gen, None, None ->
              Gsc.Config.generational ~budget_bytes:budget
            | (Harness.Runs.Markers | Harness.Runs.Profiled), None, None ->
              Gsc.Config.with_markers ~budget_bytes:budget
            | (Harness.Runs.Pretenure | Harness.Runs.Pretenure_elide), None, None ->
              Gsc.Config.with_pretenuring ~budget_bytes:budget
                (Harness.Runs.policy_of ~workload:w ~scale:sc
                   ~scan_elision:(technique = Harness.Runs.Pretenure_elide))
          in
          let cfg =
            Harness.Runs.with_nursery_cap
              { base with Gsc.Config.verify_heap = verify }
          in
          Harness.Measure.run ~workload:w ~scale:sc ~cfg ~k ()
      in
      Printf.printf "%s under %s at k=%.1f (scale %d)\n" name
        (Harness.Runs.technique_name technique)
        k sc;
      Printf.printf "  total   %.3fs (gc %.3fs = stack %.3fs + copy %.3fs)\n"
        m.Harness.Measure.total_seconds m.Harness.Measure.gc_seconds
        m.Harness.Measure.stack_seconds m.Harness.Measure.copy_seconds;
      Printf.printf "  gcs     %d (%d minor, %d major)\n"
        m.Harness.Measure.num_gcs m.Harness.Measure.minor_gcs
        m.Harness.Measure.major_gcs;
      Printf.printf "  alloc   %s   copied %s   pretenured %s\n"
        (Support.Units.bytes m.Harness.Measure.bytes_allocated)
        (Support.Units.bytes m.Harness.Measure.bytes_copied)
        (Support.Units.bytes m.Harness.Measure.bytes_pretenured);
      Printf.printf "  stack   depth avg %.1f / max %d; frames %d decoded, \
                     %d reused; %d stubs\n"
        m.Harness.Measure.avg_depth_at_gc m.Harness.Measure.max_depth_overall
        m.Harness.Measure.frames_decoded m.Harness.Measure.frames_reused
        m.Harness.Measure.stub_hits
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one configuration")
    Term.(
      const run $ factor_arg $ workload_arg $ technique $ k_arg
      $ pretenure_from $ policy_arg $ verify)

(* Shared Arg converters for collector knobs (gc-trace and gc-serve). *)

let backend_conv =
  let parse s =
    match Alloc.Backend.kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown backend %S (bump, free_list, size_class)"
              s))
  in
  Arg.conv
    ( parse,
      fun fmt k -> Format.pp_print_string fmt (Alloc.Backend.kind_name k) )

let major_kind_conv =
  let parse s =
    match Collectors.Generational.major_kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg (Printf.sprintf "unknown major kind %S (copying, mark_sweep)" s))
  in
  Arg.conv
    ( parse,
      fun fmt k ->
        Format.pp_print_string fmt
          (Collectors.Generational.major_kind_name k) )

(* --- gc-trace --- *)

let gc_trace_cmd =
  let technique =
    let techniques =
      [ ("semi", Harness.Runs.Semi); ("gen", Harness.Runs.Gen);
        ("markers", Harness.Runs.Markers);
        ("pretenure", Harness.Runs.Pretenure);
        ("pretenure-elide", Harness.Runs.Pretenure_elide) ]
    in
    let doc = "Collector technique: semi, gen, markers, pretenure, \
               pretenure-elide." in
    Arg.(value & opt (enum techniques) Harness.Runs.Gen
         & info [ "technique"; "t" ] ~docv:"TECH" ~doc)
  in
  let k_arg =
    let doc = "Memory multiple of the calibrated Min." in
    Arg.(value & opt float 4.0 & info [ "k" ] ~docv:"K" ~doc)
  in
  let out =
    let doc = "Trace output file (default $(i,WORKLOAD).trace.jsonl)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let parallelism_arg =
    let doc = "Drain domains for the copying fixpoint (1 = sequential \
               engine; >1 emits per-domain copy.dN phase spans)." in
    Arg.(value & opt int 1 & info [ "parallelism"; "p" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let modes =
      [ ("virtual", Collectors.Par_drain.Virtual);
        ("real", Collectors.Par_drain.Real) ]
    in
    let doc = "Parallel-drain execution engine: $(b,virtual) (deterministic \
               single-threaded scheduler, simulated clocks) or $(b,real) \
               (OCaml domains, wall-clock phase spans).  Only meaningful \
               with --parallelism > 1." in
    Arg.(value & opt (enum modes) Collectors.Par_drain.Virtual
         & info [ "parallelism-mode" ] ~docv:"MODE" ~doc)
  in
  let chunk_words_arg =
    let doc = "Copy-chunk grant size in words for the real-mode drain \
               (0 = engine default)." in
    Arg.(value & opt int 0 & info [ "chunk-words" ] ~docv:"N" ~doc)
  in
  let census_arg =
    let doc = "Emit a heap census (per-site live words and object-age \
               buckets) every $(docv)-th collection; 0 disables the \
               census." in
    Arg.(value & opt int 0 & info [ "census" ] ~docv:"K" ~doc)
  in
  let tenured_backend_arg =
    let doc = "Placement policy for pretenured allocations: bump, \
               free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Bump
         & info [ "tenured-backend" ] ~docv:"BACKEND" ~doc)
  in
  let los_backend_arg =
    let doc = "Placement policy for the large-object space: bump, \
               free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Free_list
         & info [ "los-backend" ] ~docv:"BACKEND" ~doc)
  in
  let major_kind_arg =
    let doc = "Tenured collection strategy: $(b,copying) (evacuating \
               compaction, the default) or $(b,mark_sweep) (mark in \
               place, sweep dead objects back into --tenured-backend as \
               reusable holes; requires --parallelism 1)." in
    Arg.(value & opt major_kind_conv Collectors.Generational.Copying
         & info [ "major-kind" ] ~docv:"KIND" ~doc)
  in
  let header_layout_arg =
    let layouts =
      [ ("classic", Mem.Header.Classic); ("packed", Mem.Header.Packed) ]
    in
    let doc = "Object-header layout: $(b,classic) (three words, the \
               default) or $(b,packed) (one meta word, plus a birth \
               word only while tracing/profiling; docs/LAYOUT.md)." in
    Arg.(value & opt (enum layouts) Mem.Header.Classic
         & info [ "header-layout" ] ~docv:"LAYOUT" ~doc)
  in
  let eager_evac_arg =
    let doc = "Hierarchical (eager-child) evacuation: copy an object's \
               children depth-first right behind it for cache locality \
               (placement only; statistics unchanged)." in
    Arg.(value & flag & info [ "eager-evac" ] ~doc)
  in
  let adaptive_arg =
    let doc = "Run the adaptive control plane at collection boundaries: \
               online nursery resizing, tenure-threshold tuning, dynamic \
               pretenuring and (mark_sweep) compaction scheduling, each \
               decision traced as a $(b,policy_update) record \
               (docs/ADAPTIVE.md)." in
    Arg.(value & flag & info [ "adaptive" ] ~doc)
  in
  let run factor name technique k out parallelism parallelism_mode chunk_words
      census_period tenured_backend los_backend major_kind header_layout
      eager_evac adaptive =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 2
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let cfg =
        { (Harness.Runs.config_for ~workload:w ~scale:sc ~technique ~k) with
          Gsc.Config.parallelism; parallelism_mode; chunk_words; census_period;
          tenured_backend; los_backend; major_kind; header_layout; eager_evac;
          adaptive }
      in
      let path =
        match out with Some p -> p | None -> name ^ ".trace.jsonl"
      in
      let metrics = Obs.Metrics.create () in
      (* Site ids are registered by the workload run; capture the names
         before the runtime is destroyed so the summary can label the
         survival table. *)
      let names = Hashtbl.create 64 in
      Obs.Trace.with_file ~metrics path (fun () ->
        let rt = Gsc.Runtime.create cfg in
        Fun.protect ~finally:(fun () -> Gsc.Runtime.destroy rt) @@ fun () ->
        w.Workloads.Spec.run rt ~scale:sc;
        for site = 0 to Gsc.Runtime.site_count rt - 1 do
          Hashtbl.replace names site (Gsc.Runtime.site_name rt site)
        done);
      (match Obs.Schema.validate_file path with
       | Ok n ->
         Printf.printf "%s under %s at k=%.1f (scale %d)\n" name
           (Harness.Runs.technique_name technique) k sc;
         Printf.printf "%d trace records written to %s (schema-valid)\n\n" n
           path
       | Error msg ->
         Printf.eprintf "trace %s failed schema validation: %s\n" path msg;
         exit 1);
      let site_name id =
        match Hashtbl.find_opt names id with
        | Some n -> n
        | None -> Printf.sprintf "site-%d" id
      in
      print_string (Obs.Summary.render ~site_name metrics)
  in
  Cmd.v
    (Cmd.info "gc-trace"
       ~doc:
         "Run a workload with GC tracing on: write the JSONL event trace, \
          validate it against the schema, and print the pause-time \
          histograms, phase breakdown and site-survival tables")
    Term.(
      const run $ factor_arg $ workload_arg $ technique $ k_arg $ out
      $ parallelism_arg $ mode_arg $ chunk_words_arg $ census_arg
      $ tenured_backend_arg $ los_backend_arg $ major_kind_arg
      $ header_layout_arg $ eager_evac_arg $ adaptive_arg)

(* --- gc-profile --- *)

let gc_profile_cmd =
  let trace_arg =
    let doc = "JSONL trace file written by $(b,gc-trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let top_arg =
    let doc = "Show at most $(docv) rows per site table." in
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc)
  in
  let windows_arg =
    let doc = "MMU window sizes in microseconds (comma-separated)." in
    Arg.(value
         & opt (list float) [ 1_000.; 5_000.; 10_000.; 50_000.; 100_000. ]
         & info [ "windows" ] ~docv:"US,US,..." ~doc)
  in
  let analyze path =
    match Obs.Profile.of_file path with
    | Ok p -> p
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
  in
  let report_cmd =
    let diff_arg =
      let doc = "Compare $(i,TRACE) against this second trace instead of \
                 reporting on it alone." in
      Arg.(value & opt (some file) None & info [ "diff" ] ~docv:"TRACE2" ~doc)
    in
    let json_arg =
      let doc = "Emit the report as one JSON object instead of tables \
                 (header numbers, per-kind pause percentiles, the MMU \
                 curve, SLO breach tallies, per-site survival)." in
      Arg.(value & flag & info [ "json" ] ~doc)
    in
    let run path diff json top windows_us =
      if json && diff <> None then begin
        prerr_endline "gc-profile report: --json and --diff cannot be combined";
        exit 2
      end;
      let a = analyze path in
      match diff with
      | None ->
        if json then print_string (Obs.Summary.profile_json ~windows_us a)
        else print_string (Obs.Summary.profile_report ~top ~windows_us a)
      | Some path2 ->
        let b = analyze path2 in
        print_string (Obs.Summary.profile_diff ~top ~a ~b ())
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Analyze a trace offline (no collector running) and print the \
            survival, pause-percentile, MMU, census and stack-scan tables; \
            with $(b,--diff), compare two traces; with $(b,--json), print \
            the machine-readable report")
      Term.(const run $ trace_arg $ diff_arg $ json_arg $ top_arg
            $ windows_arg)
  in
  let emit_policy_cmd =
    let out_arg =
      let doc = "Policy output file." in
      Arg.(value & opt string "policy.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc)
    in
    let cutoff_arg =
      let doc = "Pretenure a site when its old fraction reaches $(docv)." in
      Arg.(value & opt float Harness.Runs.cutoff
           & info [ "cutoff" ] ~docv:"FRAC" ~doc)
    in
    let min_objects_arg =
      let doc = "Ignore sites with fewer than $(docv) allocated objects." in
      Arg.(value & opt int Harness.Runs.min_objects
           & info [ "min-objects" ] ~docv:"N" ~doc)
    in
    let no_elide_arg =
      let doc = "Do not derive the scan-free (elidable) subset from the \
                 traced points-into graph." in
      Arg.(value & flag & info [ "no-elide" ] ~doc)
    in
    let merge_arg =
      let doc = "Merge this trace into $(i,TRACE) before deriving the \
                 policy (repeatable).  Per-site survival and allocation \
                 tallies sum, so the cutoff applies to the \
                 allocation-weighted union of the runs — one policy \
                 serving several profiled workload mixes." in
      Arg.(value & opt_all file [] & info [ "merge" ] ~docv:"TRACE2" ~doc)
    in
    let run path out cutoff min_objects no_elide merges =
      let p =
        List.fold_left
          (fun acc path2 -> Obs.Profile.merge acc (analyze path2))
          (analyze path) merges
      in
      let policy =
        Gsc.Policy_file.of_profile p ~cutoff ~min_objects
          ~scan_elision:(not no_elide)
      in
      Gsc.Policy_file.save policy out;
      (* Reload and verify: the file we just wrote must load back to the
         policy we derived, so a later `run --policy` sees the same
         decisions. *)
      (match Gsc.Policy_file.load out with
       | Ok p' when p' = policy -> ()
       | Ok _ ->
         Printf.eprintf "%s: reloaded policy differs from the one written\n"
           out;
         exit 1
       | Error msg ->
         Printf.eprintf "%s: written policy fails to load: %s\n" out msg;
         exit 1);
      Printf.printf
        "%s: %d pretenured site(s), %d scan-free (cutoff %.2f, min %d \
         objects%s)\n"
        out
        (List.length policy.Gsc.Policy_file.sites)
        (List.length policy.Gsc.Policy_file.no_scan)
        cutoff min_objects
        (match merges with
         | [] -> ""
         | _ -> Printf.sprintf ", %d traces merged" (1 + List.length merges))
    in
    Cmd.v
      (Cmd.info "emit-policy"
         ~doc:
           "Derive a pretenuring policy from one or more traces \
            ($(b,--merge)) and write it as a versioned policy.json for \
            $(b,run --policy)")
      Term.(
        const run $ trace_arg $ out_arg $ cutoff_arg $ min_objects_arg
        $ no_elide_arg $ merge_arg)
  in
  Cmd.group
    (Cmd.info "gc-profile"
       ~doc:
         "Offline trace analysis: survival curves, MMU, pause percentiles, \
          heap census — and policy emission that closes the pretenure loop")
    [ report_cmd; emit_policy_cmd ]

(* --- gc-serve --- *)

let gc_serve_cmd =
  let tenants_arg =
    let doc = "Number of tenants (profiles cycle arena, cache, archive)." in
    Arg.(value & opt int 6 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let sessions_arg =
    let doc = "Sessions per tenant." in
    Arg.(value & opt int 256 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Total requests to serve." in
    Arg.(value & opt int 20_000 & info [ "requests" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Open-loop arrival rate in requests per second (virtual \
               schedule; see docs/SLO.md)." in
    Arg.(value & opt float 2_000. & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let seed_arg =
    let doc = "Request-stream seed (the checksum is a pure function of \
               it)." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let budget_arg =
    let doc = "Memory budget in bytes." in
    Arg.(value & opt int (32 * 1024 * 1024)
         & info [ "budget" ] ~docv:"BYTES" ~doc)
  in
  let nursery_kb_arg =
    let doc = "Nursery cap in KB." in
    Arg.(value & opt int 512 & info [ "nursery-kb" ] ~docv:"KB" ~doc)
  in
  let policy_arg =
    let doc = "Pretenure from this policy file (see `repro gc-profile \
               emit-policy`)." in
    Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE" ~doc)
  in
  let major_kind_arg =
    let doc = "Tenured collection strategy: copying or mark_sweep \
               (mark_sweep requires --parallelism 1)." in
    Arg.(value & opt major_kind_conv Collectors.Generational.Copying
         & info [ "major-kind" ] ~docv:"KIND" ~doc)
  in
  let tenured_backend_arg =
    let doc = "Placement policy for pretenured allocations (and, under \
               mark_sweep, promotions): bump, free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Bump
         & info [ "tenured-backend" ] ~docv:"BACKEND" ~doc)
  in
  let los_backend_arg =
    let doc = "Placement policy for the large-object space: bump, \
               free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Free_list
         & info [ "los-backend" ] ~docv:"BACKEND" ~doc)
  in
  let eager_evac_arg =
    let doc = "Hierarchical (eager-child) evacuation in the copy engines \
               (placement only; statistics unchanged)." in
    Arg.(value & flag & info [ "eager-evac" ] ~doc)
  in
  let parallelism_arg =
    let doc = "Drain domains for the copying fixpoint (1 = sequential \
               engine).  Incompatible with --major-kind mark_sweep." in
    Arg.(value & opt int 1 & info [ "parallelism"; "p" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let modes =
      [ ("virtual", Collectors.Par_drain.Virtual);
        ("real", Collectors.Par_drain.Real) ]
    in
    let doc = "Parallel-drain execution engine: $(b,virtual) \
               (deterministic scheduler, simulated clocks) or $(b,real) \
               (OCaml domains).  Only meaningful with --parallelism > 1." in
    Arg.(value & opt (enum modes) Collectors.Par_drain.Virtual
         & info [ "parallelism-mode" ] ~docv:"MODE" ~doc)
  in
  let adaptive_arg =
    let doc = "Run the adaptive control plane: online nursery resizing, \
               tenure-threshold tuning, dynamic pretenuring and \
               (mark_sweep) compaction scheduling, each decision traced \
               as a $(b,policy_update) record (docs/ADAPTIVE.md).  With \
               $(b,--trace), the run ends with an offline replay that \
               must re-derive every decision bit-for-bit (exit 1 \
               otherwise)." in
    Arg.(value & flag & info [ "adaptive" ] ~doc)
  in
  let phase_shift_arg =
    let doc = "Rotate every tenant to the next lifetime profile from \
               request $(docv) on (0 = never) — the behaviour change the \
               adaptive plane is measured against.  The request stream \
               stays a pure function of the seed, so checksums compare \
               across configurations at equal shift." in
    Arg.(value & opt int 0 & info [ "phase-shift" ] ~docv:"REQ" ~doc)
  in
  let min_policy_updates_arg =
    let doc = "Exit 1 unless the adaptive replay matched at least \
               $(docv) policy updates (smoke-test hook).  Needs \
               $(b,--adaptive) and $(b,--trace)." in
    Arg.(value & opt int 0 & info [ "min-policy-updates" ] ~docv:"N" ~doc)
  in
  let header_layout_arg =
    let layouts =
      [ ("classic", Mem.Header.Classic); ("packed", Mem.Header.Packed) ]
    in
    let doc = "Object-header layout: classic or packed." in
    Arg.(value & opt (enum layouts) Mem.Header.Classic
         & info [ "header-layout" ] ~docv:"LAYOUT" ~doc)
  in
  let max_pause_arg =
    let doc = "SLO: every pause must stay within $(docv) microseconds." in
    Arg.(value & opt (some float) None
         & info [ "max-pause-us" ] ~docv:"US" ~doc)
  in
  let p99_arg =
    let doc = "SLO: running p99 pause bound in microseconds." in
    Arg.(value & opt (some float) None & info [ "p99-us" ] ~docv:"US" ~doc)
  in
  let p999_arg =
    let doc = "SLO: running p99.9 pause bound in microseconds." in
    Arg.(value & opt (some float) None & info [ "p999-us" ] ~docv:"US" ~doc)
  in
  let min_mmu_arg =
    let doc = "SLO: minimum mutator utilisation over trailing \
               --mmu-window-us windows, in [0,1]." in
    Arg.(value & opt (some float) None & info [ "min-mmu" ] ~docv:"FRAC" ~doc)
  in
  let mmu_window_arg =
    let doc = "The MMU window for --min-mmu and the report." in
    Arg.(value & opt float 10_000. & info [ "mmu-window-us" ] ~docv:"US" ~doc)
  in
  let flight_arg =
    let doc = "Flight-recorder ring capacity in events." in
    Arg.(value & opt int 256 & info [ "flight" ] ~docv:"N" ~doc)
  in
  let flight_dump_arg =
    let doc = "Dump the ring (schema-valid JSONL) here on the first SLO \
               breach." in
    Arg.(value & opt string "flight.dump.jsonl"
         & info [ "flight-dump" ] ~docv:"FILE" ~doc)
  in
  let trace_file_arg =
    let doc = "Write a full JSONL trace to $(docv) instead of flight-only \
               recording (full data-plane accounting; slower)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  (* The dump must be schema-valid and must contain the breaching
     collection: an slo_breach record and, riding just before it in the
     ring, the gc_end it was stamped behind (same collection ordinal). *)
  let validate_dump path =
    match Obs.Schema.validate_file path with
    | Error msg -> Error msg
    | Ok _ ->
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let gcs_of ev =
        List.filter_map
          (fun line ->
            match Obs.Json.parse_opt line with
            | Some j ->
              (match Obs.Json.member "ev" j, Obs.Json.member "gc" j with
               | Some (Obs.Json.Str e), Some (Obs.Json.Num g) when e = ev ->
                 Some (int_of_float g)
               | _ -> None)
            | None -> None)
          !lines
      in
      let breach_gcs = gcs_of "slo_breach" in
      let end_gcs = gcs_of "gc_end" in
      if breach_gcs = [] then Error "dump contains no slo_breach record"
      else if List.exists (fun g -> List.mem g end_gcs) breach_gcs then Ok ()
      else Error "dump's slo_breach has no matching gc_end"
  in
  let run tenants sessions requests rate seed budget nursery_kb policy
      major_kind header_layout tenured_backend los_backend eager_evac
      parallelism parallelism_mode adaptive phase_shift min_policy_updates
      max_pause p99 p999 min_mmu mmu_window flight_cap flight_dump
      trace_file =
    if tenants < 1 || sessions < 1 || requests < 1 || rate <= 0.
       || flight_cap < 1 then begin
      prerr_endline
        "gc-serve: --tenants, --sessions, --requests, --rate and --flight \
         must be positive";
      exit 2
    end;
    if phase_shift < 0 then begin
      prerr_endline "gc-serve: --phase-shift must be non-negative";
      exit 2
    end;
    if parallelism < 1 || parallelism > Collectors.Gc_stats.max_domains
    then begin
      Printf.eprintf "gc-serve: --parallelism must be in [1, %d]\n"
        Collectors.Gc_stats.max_domains;
      exit 2
    end;
    if major_kind = Collectors.Generational.Mark_sweep && parallelism > 1
    then begin
      prerr_endline
        "gc-serve: --major-kind mark_sweep requires --parallelism 1 (the \
         parallel drain carves copy chunks off the space frontier)";
      exit 2
    end;
    if min_policy_updates > 0 && (not adaptive || trace_file = None)
    then begin
      prerr_endline
        "gc-serve: --min-policy-updates needs --adaptive and --trace FILE";
      exit 2
    end;
    let base =
      match policy with
      | None -> Gsc.Config.generational ~budget_bytes:budget
      | Some path ->
        (match Gsc.Config.with_policy_file ~budget_bytes:budget path with
         | Ok cfg -> cfg
         | Error msg ->
           prerr_endline ("policy " ^ path ^ ": " ^ msg);
           exit 1)
    in
    let target =
      { Obs.Slo.max_pause_us = max_pause; p99_us = p99; p999_us = p999;
        min_mmu; mmu_window_us = mmu_window }
    in
    let cfg =
      { base with
        Gsc.Config.nursery_bytes_max = nursery_kb * 1024;
        major_kind; header_layout; slo = target;
        tenured_backend; los_backend; eager_evac; parallelism;
        parallelism_mode; adaptive;
        global_slots = max base.Gsc.Config.global_slots tenants }
    in
    let metrics = Obs.Metrics.create () in
    let fl = Obs.Flight.create ~capacity:flight_cap () in
    let flight_mode = trace_file = None in
    let dumped = ref None in
    let slo =
      Obs.Slo.create
        ~on_breach:(fun br ->
          if flight_mode && !dumped = None then
            dumped := Some (br, Obs.Flight.dump_to_file fl flight_dump))
        cfg.Gsc.Config.slo
    in
    let serve () =
      let rt = Gsc.Runtime.create cfg in
      Fun.protect ~finally:(fun () -> Gsc.Runtime.destroy rt) @@ fun () ->
      Workloads.Serve.run rt ~slo ~phase_shift ~tenants ~sessions ~requests
        ~rate_rps:rate ~seed ()
    in
    let rep =
      match trace_file with
      | Some path -> Obs.Trace.with_file ~metrics ~slo path serve
      | None -> Obs.Trace.with_ring ~metrics ~slo fl serve
    in
    Printf.printf
      "gc-serve: %d tenants x %d sessions, %d requests @ %.0f req/s \
       (seed %d%s)\n"
      tenants sessions requests rate seed
      (if phase_shift > 0 then
         Printf.sprintf ", phase shift @%d" phase_shift
       else "");
    Printf.printf
      "config: %s, major=%s, layout=%s, nursery=%dKB, budget=%s%s\n\n"
      (Gsc.Config.name cfg)
      (Collectors.Generational.major_kind_name major_kind)
      (match header_layout with
       | Mem.Header.Classic -> "classic"
       | Mem.Header.Packed -> "packed")
      nursery_kb
      (Support.Units.bytes budget)
      (if adaptive then ", adaptive" else "");
    Printf.printf
      "sustained %.0f req/s (offered %.0f); horizon %.1f ms; checksum \
       %08x\n\n"
      rep.Workloads.Serve.sustained_rps rep.Workloads.Serve.offered_rps
      (rep.Workloads.Serve.horizon_us /. 1e3)
      rep.Workloads.Serve.checksum;
    Printf.printf "%-7s %-8s %9s %11s %11s %13s %8s %9s %12s\n" "tenant"
      "kind" "requests" "p99_lat_us" "p999_lat_us" "max_lat_us" "pauses"
      "pause_us" "p99_pause_us";
    List.iter
      (fun (t : Workloads.Serve.tenant_report) ->
        Printf.printf "%-7d %-8s %9d %11.1f %11.1f %13.1f %8d %9.0f %12.1f\n"
          t.Workloads.Serve.tenant t.Workloads.Serve.kind
          t.Workloads.Serve.requests t.Workloads.Serve.p99_lat_us
          t.Workloads.Serve.p999_lat_us t.Workloads.Serve.max_lat_us
          t.Workloads.Serve.pauses t.Workloads.Serve.pause_us
          t.Workloads.Serve.p99_pause_us)
      rep.Workloads.Serve.tenants;
    print_newline ();
    let pauses = Obs.Slo.pause_count slo in
    Printf.printf
      "pauses: %d; online p99 %.1f us, p99.9 %.1f us; MMU@%.0fus %.1f%%\n"
      pauses
      (Obs.Slo.percentile slo 0.99)
      (Obs.Slo.percentile slo 0.999)
      mmu_window
      (100. *. Obs.Slo.mmu slo ~window_us:mmu_window);
    (match Obs.Slo.breaches slo with
     | [] -> print_endline "slo: no breaches"
     | per_rule ->
       Printf.printf "slo: %d breach(es) (%s)\n"
         (Obs.Slo.breach_total slo)
         (String.concat ", "
            (List.map
               (fun (r, n) -> Printf.sprintf "%s:%d" r n)
               per_rule)));
    (match !dumped with
     | None ->
       if flight_mode then
         Printf.printf "flight: no dump (ring holds %d of %d events)\n"
           (Obs.Flight.length fl) (Obs.Flight.capacity fl)
     | Some ((br : Obs.Slo.breach), n) ->
       Printf.printf "flight: %d events dumped to %s on first breach (%s)\n"
         n flight_dump br.Obs.Slo.rule;
       (match validate_dump flight_dump with
        | Ok () -> ()
        | Error msg ->
          Printf.eprintf "flight dump %s invalid: %s\n" flight_dump msg;
          exit 1));
    (match trace_file with
     | None -> ()
     | Some path ->
       (match Obs.Schema.validate_file path with
        | Ok n ->
          Printf.printf "trace: %d records in %s (schema-valid)\n" n path
        | Error msg ->
          Printf.eprintf "trace %s failed schema validation: %s\n" path msg;
          exit 1));
    (* Adaptive self-check: the trace must replay to the decisions the
       online controller took — same seeding as the collector's own
       controller ([Generational.adaptive_setup] on the exact config the
       runtime resolved), so any divergence is a real determinism bug,
       not a harness mismatch. *)
    match trace_file with
    | Some path when adaptive ->
      let gcfg = Gsc.Config.generational_config cfg in
      let params, nursery_w = Collectors.Generational.adaptive_setup gcfg in
      (match
         Control.Replay.of_file params ~nursery_limit_w:nursery_w
           ~tenure_threshold:gcfg.Collectors.Generational.tenure_threshold
           ~pretenured:gcfg.Collectors.Generational.pretenured_init path
       with
       | Error msg ->
         Printf.eprintf "adaptive replay of %s failed: %s\n" path msg;
         exit 1
       | Ok derived ->
         let traced =
           match Obs.Profile.of_file path with
           | Ok p -> p.Obs.Profile.policy_updates
           | Error msg ->
             Printf.eprintf "%s: %s\n" path msg;
             exit 1
         in
         (match Control.Replay.verify ~derived ~traced with
          | Error msg ->
            Printf.eprintf "adaptive replay diverged: %s\n" msg;
            exit 1
          | Ok n ->
            Printf.printf
              "adaptive: %d policy update(s); offline replay re-derives \
               every decision\n"
              n;
            if n < min_policy_updates then begin
              Printf.eprintf
                "adaptive: expected at least %d policy update(s), got %d\n"
                min_policy_updates n;
              exit 1
            end))
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "gc-serve"
       ~doc:
         "Run the open-loop multi-tenant server workload with the online \
          SLO monitor and flight recorder attached, and print the SLO \
          report (per-tenant latency and pause percentiles, online MMU, \
          breach counts, sustained request rate)")
    Term.(
      const run $ tenants_arg $ sessions_arg $ requests_arg $ rate_arg
      $ seed_arg $ budget_arg $ nursery_kb_arg $ policy_arg $ major_kind_arg
      $ header_layout_arg $ tenured_backend_arg $ los_backend_arg
      $ eager_evac_arg $ parallelism_arg $ mode_arg $ adaptive_arg
      $ phase_shift_arg $ min_policy_updates_arg $ max_pause_arg $ p99_arg
      $ p999_arg $ min_mmu_arg $ mmu_window_arg $ flight_arg
      $ flight_dump_arg $ trace_file_arg)

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduction of Cheng, Harper & Lee, \"Generational Stack \
         Collection and Profile-Driven Pretenuring\" (PLDI 1998)"
  in
  let code =
    Cmd.eval
      (Cmd.group info
         [ list_cmd; tables_cmd; figure2_cmd; ablation_cmd; profile_cmd;
           calibrate_cmd; check_cmd; run_cmd; gc_trace_cmd; gc_profile_cmd;
           gc_serve_cmd ])
  in
  (* Unified exit conventions (docs/SLO.md): 0 = success, 1 = invalid
     data (schema-invalid trace, failing claim, bad policy), 2 = usage
     error.  Cmdliner reports CLI errors as 124; fold them into 2. *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
