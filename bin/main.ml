(* The `repro` command-line tool: regenerate any table or figure of the
   paper, profile a workload, derive and save pretenuring policies, or
   run a single workload under a chosen configuration. *)

open Cmdliner

let factor_arg =
  let doc =
    "Scale factor applied to every workload's default problem size."
  in
  Arg.(value & opt float 1.0 & info [ "factor"; "f" ] ~docv:"FACTOR" ~doc)

let workload_arg =
  let doc = "Workload name (see `repro list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Printf.printf "%-14s %s\n" w.Workloads.Spec.name
          w.Workloads.Spec.description)
      Workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark workloads")
    Term.(const run $ const ())

(* --- tables --- *)

let tables_cmd =
  let only =
    let doc = "Render only this item (table1..table7, figure2, ablation)." in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let trace =
    let doc = "Also write a JSONL GC trace of the whole run to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run factor only trace_path =
    match only with
    | None -> print_string (Harness.Suite.render_all ?trace_path ~factor ())
    | Some id ->
      (match Harness.Suite.render_one ?trace_path ~factor id with
       | s -> print_string s
       | exception Not_found ->
         prerr_endline ("unknown item: " ^ id);
         exit 1)
  in
  Cmd.v
    (Cmd.info "tables"
       ~doc:"Regenerate the paper's tables and figures (all by default)")
    Term.(const run $ factor_arg $ only $ trace)

(* --- figure2 --- *)

let figure2_cmd =
  let run factor = print_string (Harness.Figure2.render ~factor) in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"Heap-profile reports for Knuth-Bendix and Nqueen (Figure 2)")
    Term.(const run $ factor_arg)

(* --- ablation --- *)

let ablation_cmd =
  let run factor = print_string (Harness.Ablation.render ~factor) in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Design-choice ablations (see DESIGN.md)")
    Term.(const run $ factor_arg)

(* --- profile --- *)

let profile_cmd =
  let out =
    let doc = "Write the raw profile to this file (for later pretenuring)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let run factor name out =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let data = Harness.Runs.profile_of ~workload:w ~scale:sc in
      print_string
        (Heap_profile.Report.render ~title:name ~cutoff:Harness.Runs.cutoff
           data);
      (match out with
       | None -> ()
       | Some path ->
         Heap_profile.Profile_data.save data ~path;
         Printf.printf "profile written to %s\n" path)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Heap-profile a workload and print the Figure 2 report")
    Term.(const run $ factor_arg $ workload_arg $ out)

(* --- check --- *)

let check_cmd =
  let run factor =
    let out = Harness.Claims.render ~factor in
    print_string out;
    if not (Harness.Claims.all_pass ~factor) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify the paper's headline claims against fresh measurements \
          (exit 1 on any failure)")
    Term.(const run $ factor_arg)

(* --- calibrate --- *)

let calibrate_cmd =
  let run factor =
    Printf.printf "%-14s %12s %12s  (Min = 2 x max live; budgets are k*Min)\n"
      "Workload" "Max live" "Min";
    List.iter
      (fun w ->
        let sc = Harness.Runs.scale ~factor w in
        let live = Harness.Calibrate.max_live_bytes ~workload:w ~scale:sc in
        Printf.printf "%-14s %12s %12s\n" w.Workloads.Spec.name
          (Support.Units.bytes live)
          (Support.Units.bytes (Harness.Calibrate.min_bytes ~workload:w ~scale:sc)))
      Workloads.Registry.all
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:"Measure Min (twice the maximum live data) for every workload")
    Term.(const run $ factor_arg)

(* --- run --- *)

let run_cmd =
  let technique =
    let techniques =
      [ ("semi", Harness.Runs.Semi); ("gen", Harness.Runs.Gen);
        ("markers", Harness.Runs.Markers);
        ("pretenure", Harness.Runs.Pretenure);
        ("pretenure-elide", Harness.Runs.Pretenure_elide) ]
    in
    let doc = "Collector technique: semi, gen, markers, pretenure, \
               pretenure-elide." in
    Arg.(value & opt (enum techniques) Harness.Runs.Gen
         & info [ "technique"; "t" ] ~docv:"TECH" ~doc)
  in
  let k_arg =
    let doc = "Memory multiple of the calibrated Min." in
    Arg.(value & opt float 4.0 & info [ "k" ] ~docv:"K" ~doc)
  in
  let pretenure_from =
    let doc =
      "Derive the pretenuring policy from this saved profile (see `repro \
       profile --out`) instead of profiling in-process."
    in
    Arg.(value & opt (some file) None
         & info [ "pretenure-from" ] ~docv:"FILE" ~doc)
  in
  let policy_arg =
    let doc =
      "Pretenure from a policy file emitted by `repro gc-profile \
       emit-policy` (the trace-driven loop; no profiler attached)."
    in
    Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"FILE" ~doc)
  in
  let verify =
    let doc = "Walk and check the whole heap after every collection." in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run factor name technique k pretenure_from policy verify =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let m =
        match pretenure_from, policy, verify with
        | None, None, false ->
          Harness.Runs.measure ~workload:w ~scale:sc ~technique ~k
        | _ ->
          (* ad-hoc configuration: saved profile or policy file, and/or
             verification *)
          let budget = Harness.Calibrate.budget_for ~workload:w ~scale:sc ~k in
          let base =
            match technique, pretenure_from, policy with
            | _, _, Some path ->
              (match Gsc.Config.with_policy_file ~budget_bytes:budget path with
               | Ok cfg -> cfg
               | Error msg ->
                 prerr_endline ("policy " ^ path ^ ": " ^ msg);
                 exit 1)
            | _, Some path, None ->
              let data = Heap_profile.Profile_data.load ~path in
              let policy =
                Gsc.Pretenure.of_profile data ~cutoff:Harness.Runs.cutoff
                  ~min_objects:Harness.Runs.min_objects
                  ~scan_elision:(technique = Harness.Runs.Pretenure_elide)
              in
              Gsc.Config.with_pretenuring ~budget_bytes:budget policy
            | Harness.Runs.Semi, None, None ->
              Gsc.Config.semispace ~budget_bytes:budget
            | Harness.Runs.Gen, None, None ->
              Gsc.Config.generational ~budget_bytes:budget
            | (Harness.Runs.Markers | Harness.Runs.Profiled), None, None ->
              Gsc.Config.with_markers ~budget_bytes:budget
            | (Harness.Runs.Pretenure | Harness.Runs.Pretenure_elide), None, None ->
              Gsc.Config.with_pretenuring ~budget_bytes:budget
                (Harness.Runs.policy_of ~workload:w ~scale:sc
                   ~scan_elision:(technique = Harness.Runs.Pretenure_elide))
          in
          let cfg =
            Harness.Runs.with_nursery_cap
              { base with Gsc.Config.verify_heap = verify }
          in
          Harness.Measure.run ~workload:w ~scale:sc ~cfg ~k ()
      in
      Printf.printf "%s under %s at k=%.1f (scale %d)\n" name
        (Harness.Runs.technique_name technique)
        k sc;
      Printf.printf "  total   %.3fs (gc %.3fs = stack %.3fs + copy %.3fs)\n"
        m.Harness.Measure.total_seconds m.Harness.Measure.gc_seconds
        m.Harness.Measure.stack_seconds m.Harness.Measure.copy_seconds;
      Printf.printf "  gcs     %d (%d minor, %d major)\n"
        m.Harness.Measure.num_gcs m.Harness.Measure.minor_gcs
        m.Harness.Measure.major_gcs;
      Printf.printf "  alloc   %s   copied %s   pretenured %s\n"
        (Support.Units.bytes m.Harness.Measure.bytes_allocated)
        (Support.Units.bytes m.Harness.Measure.bytes_copied)
        (Support.Units.bytes m.Harness.Measure.bytes_pretenured);
      Printf.printf "  stack   depth avg %.1f / max %d; frames %d decoded, \
                     %d reused; %d stubs\n"
        m.Harness.Measure.avg_depth_at_gc m.Harness.Measure.max_depth_overall
        m.Harness.Measure.frames_decoded m.Harness.Measure.frames_reused
        m.Harness.Measure.stub_hits
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload under one configuration")
    Term.(
      const run $ factor_arg $ workload_arg $ technique $ k_arg
      $ pretenure_from $ policy_arg $ verify)

(* --- gc-trace --- *)

let gc_trace_cmd =
  let technique =
    let techniques =
      [ ("semi", Harness.Runs.Semi); ("gen", Harness.Runs.Gen);
        ("markers", Harness.Runs.Markers);
        ("pretenure", Harness.Runs.Pretenure);
        ("pretenure-elide", Harness.Runs.Pretenure_elide) ]
    in
    let doc = "Collector technique: semi, gen, markers, pretenure, \
               pretenure-elide." in
    Arg.(value & opt (enum techniques) Harness.Runs.Gen
         & info [ "technique"; "t" ] ~docv:"TECH" ~doc)
  in
  let k_arg =
    let doc = "Memory multiple of the calibrated Min." in
    Arg.(value & opt float 4.0 & info [ "k" ] ~docv:"K" ~doc)
  in
  let out =
    let doc = "Trace output file (default $(i,WORKLOAD).trace.jsonl)." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let parallelism_arg =
    let doc = "Drain domains for the copying fixpoint (1 = sequential \
               engine; >1 emits per-domain copy.dN phase spans)." in
    Arg.(value & opt int 1 & info [ "parallelism"; "p" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let modes =
      [ ("virtual", Collectors.Par_drain.Virtual);
        ("real", Collectors.Par_drain.Real) ]
    in
    let doc = "Parallel-drain execution engine: $(b,virtual) (deterministic \
               single-threaded scheduler, simulated clocks) or $(b,real) \
               (OCaml domains, wall-clock phase spans).  Only meaningful \
               with --parallelism > 1." in
    Arg.(value & opt (enum modes) Collectors.Par_drain.Virtual
         & info [ "parallelism-mode" ] ~docv:"MODE" ~doc)
  in
  let chunk_words_arg =
    let doc = "Copy-chunk grant size in words for the real-mode drain \
               (0 = engine default)." in
    Arg.(value & opt int 0 & info [ "chunk-words" ] ~docv:"N" ~doc)
  in
  let census_arg =
    let doc = "Emit a heap census (per-site live words and object-age \
               buckets) every $(docv)-th collection; 0 disables the \
               census." in
    Arg.(value & opt int 0 & info [ "census" ] ~docv:"K" ~doc)
  in
  let backend_conv =
    let parse s =
      match Alloc.Backend.kind_of_string s with
      | Some k -> Ok k
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown backend %S (bump, free_list, size_class)"
                s))
    in
    Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Alloc.Backend.kind_name k))
  in
  let tenured_backend_arg =
    let doc = "Placement policy for pretenured allocations: bump, \
               free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Bump
         & info [ "tenured-backend" ] ~docv:"BACKEND" ~doc)
  in
  let los_backend_arg =
    let doc = "Placement policy for the large-object space: bump, \
               free_list or size_class." in
    Arg.(value & opt backend_conv Alloc.Backend.Free_list
         & info [ "los-backend" ] ~docv:"BACKEND" ~doc)
  in
  let major_kind_conv =
    let parse s =
      match Collectors.Generational.major_kind_of_string s with
      | Some k -> Ok k
      | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown major kind %S (copying, mark_sweep)" s))
    in
    Arg.conv
      ( parse,
        fun fmt k ->
          Format.pp_print_string fmt
            (Collectors.Generational.major_kind_name k) )
  in
  let major_kind_arg =
    let doc = "Tenured collection strategy: $(b,copying) (evacuating \
               compaction, the default) or $(b,mark_sweep) (mark in \
               place, sweep dead objects back into --tenured-backend as \
               reusable holes; requires --parallelism 1)." in
    Arg.(value & opt major_kind_conv Collectors.Generational.Copying
         & info [ "major-kind" ] ~docv:"KIND" ~doc)
  in
  let header_layout_arg =
    let layouts =
      [ ("classic", Mem.Header.Classic); ("packed", Mem.Header.Packed) ]
    in
    let doc = "Object-header layout: $(b,classic) (three words, the \
               default) or $(b,packed) (one meta word, plus a birth \
               word only while tracing/profiling; docs/LAYOUT.md)." in
    Arg.(value & opt (enum layouts) Mem.Header.Classic
         & info [ "header-layout" ] ~docv:"LAYOUT" ~doc)
  in
  let eager_evac_arg =
    let doc = "Hierarchical (eager-child) evacuation: copy an object's \
               children depth-first right behind it for cache locality \
               (placement only; statistics unchanged)." in
    Arg.(value & flag & info [ "eager-evac" ] ~doc)
  in
  let run factor name technique k out parallelism parallelism_mode chunk_words
      census_period tenured_backend los_backend major_kind header_layout
      eager_evac =
    match Workloads.Registry.find name with
    | exception Not_found ->
      prerr_endline ("unknown workload: " ^ name);
      exit 1
    | w ->
      let sc = Harness.Runs.scale ~factor w in
      let cfg =
        { (Harness.Runs.config_for ~workload:w ~scale:sc ~technique ~k) with
          Gsc.Config.parallelism; parallelism_mode; chunk_words; census_period;
          tenured_backend; los_backend; major_kind; header_layout; eager_evac }
      in
      let path =
        match out with Some p -> p | None -> name ^ ".trace.jsonl"
      in
      let metrics = Obs.Metrics.create () in
      (* Site ids are registered by the workload run; capture the names
         before the runtime is destroyed so the summary can label the
         survival table. *)
      let names = Hashtbl.create 64 in
      Obs.Trace.with_file ~metrics path (fun () ->
        let rt = Gsc.Runtime.create cfg in
        Fun.protect ~finally:(fun () -> Gsc.Runtime.destroy rt) @@ fun () ->
        w.Workloads.Spec.run rt ~scale:sc;
        for site = 0 to Gsc.Runtime.site_count rt - 1 do
          Hashtbl.replace names site (Gsc.Runtime.site_name rt site)
        done);
      (match Obs.Schema.validate_file path with
       | Ok n ->
         Printf.printf "%s under %s at k=%.1f (scale %d)\n" name
           (Harness.Runs.technique_name technique) k sc;
         Printf.printf "%d trace records written to %s (schema-valid)\n\n" n
           path
       | Error msg ->
         Printf.eprintf "trace %s failed schema validation: %s\n" path msg;
         exit 1);
      let site_name id =
        match Hashtbl.find_opt names id with
        | Some n -> n
        | None -> Printf.sprintf "site-%d" id
      in
      print_string (Obs.Summary.render ~site_name metrics)
  in
  Cmd.v
    (Cmd.info "gc-trace"
       ~doc:
         "Run a workload with GC tracing on: write the JSONL event trace, \
          validate it against the schema, and print the pause-time \
          histograms, phase breakdown and site-survival tables")
    Term.(
      const run $ factor_arg $ workload_arg $ technique $ k_arg $ out
      $ parallelism_arg $ mode_arg $ chunk_words_arg $ census_arg
      $ tenured_backend_arg $ los_backend_arg $ major_kind_arg
      $ header_layout_arg $ eager_evac_arg)

(* --- gc-profile --- *)

let gc_profile_cmd =
  let trace_arg =
    let doc = "JSONL trace file written by $(b,gc-trace)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let top_arg =
    let doc = "Show at most $(docv) rows per site table." in
    Arg.(value & opt int 12 & info [ "top" ] ~docv:"N" ~doc)
  in
  let windows_arg =
    let doc = "MMU window sizes in microseconds (comma-separated)." in
    Arg.(value
         & opt (list float) [ 1_000.; 5_000.; 10_000.; 50_000.; 100_000. ]
         & info [ "windows" ] ~docv:"US,US,..." ~doc)
  in
  let analyze path =
    match Obs.Profile.of_file path with
    | Ok p -> p
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 1
  in
  let report_cmd =
    let diff_arg =
      let doc = "Compare $(i,TRACE) against this second trace instead of \
                 reporting on it alone." in
      Arg.(value & opt (some file) None & info [ "diff" ] ~docv:"TRACE2" ~doc)
    in
    let run path diff top windows_us =
      let a = analyze path in
      match diff with
      | None -> print_string (Obs.Summary.profile_report ~top ~windows_us a)
      | Some path2 ->
        let b = analyze path2 in
        print_string (Obs.Summary.profile_diff ~top ~a ~b ())
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Analyze a trace offline (no collector running) and print the \
            survival, pause-percentile, MMU, census and stack-scan tables; \
            with $(b,--diff), compare two traces")
      Term.(const run $ trace_arg $ diff_arg $ top_arg $ windows_arg)
  in
  let emit_policy_cmd =
    let out_arg =
      let doc = "Policy output file." in
      Arg.(value & opt string "policy.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc)
    in
    let cutoff_arg =
      let doc = "Pretenure a site when its old fraction reaches $(docv)." in
      Arg.(value & opt float Harness.Runs.cutoff
           & info [ "cutoff" ] ~docv:"FRAC" ~doc)
    in
    let min_objects_arg =
      let doc = "Ignore sites with fewer than $(docv) allocated objects." in
      Arg.(value & opt int Harness.Runs.min_objects
           & info [ "min-objects" ] ~docv:"N" ~doc)
    in
    let no_elide_arg =
      let doc = "Do not derive the scan-free (elidable) subset from the \
                 traced points-into graph." in
      Arg.(value & flag & info [ "no-elide" ] ~doc)
    in
    let run path out cutoff min_objects no_elide =
      let p = analyze path in
      let policy =
        Gsc.Policy_file.of_profile p ~cutoff ~min_objects
          ~scan_elision:(not no_elide)
      in
      Gsc.Policy_file.save policy out;
      (* Reload and verify: the file we just wrote must load back to the
         policy we derived, so a later `run --policy` sees the same
         decisions. *)
      (match Gsc.Policy_file.load out with
       | Ok p' when p' = policy -> ()
       | Ok _ ->
         Printf.eprintf "%s: reloaded policy differs from the one written\n"
           out;
         exit 1
       | Error msg ->
         Printf.eprintf "%s: written policy fails to load: %s\n" out msg;
         exit 1);
      Printf.printf
        "%s: %d pretenured site(s), %d scan-free (cutoff %.2f, min %d \
         objects)\n"
        out
        (List.length policy.Gsc.Policy_file.sites)
        (List.length policy.Gsc.Policy_file.no_scan)
        cutoff min_objects
    in
    Cmd.v
      (Cmd.info "emit-policy"
         ~doc:
           "Derive a pretenuring policy from a trace and write it as a \
            versioned policy.json for $(b,run --policy)")
      Term.(
        const run $ trace_arg $ out_arg $ cutoff_arg $ min_objects_arg
        $ no_elide_arg)
  in
  Cmd.group
    (Cmd.info "gc-profile"
       ~doc:
         "Offline trace analysis: survival curves, MMU, pause percentiles, \
          heap census — and policy emission that closes the pretenure loop")
    [ report_cmd; emit_policy_cmd ]

let () =
  let info =
    Cmd.info "repro" ~version:"1.0"
      ~doc:
        "Reproduction of Cheng, Harper & Lee, \"Generational Stack \
         Collection and Profile-Driven Pretenuring\" (PLDI 1998)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; tables_cmd; figure2_cmd; ablation_cmd; profile_cmd;
            calibrate_cmd; check_cmd; run_cmd; gc_trace_cmd;
            gc_profile_cmd ]))
